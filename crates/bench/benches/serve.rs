//! Serving-path latency: every query opcode measured end-to-end through
//! a real `tpcp-serve` instance on loopback (frame encode → TCP → router
//! → model evaluation → response decode), plus the query cache's effect.
//!
//! Two traffic shapes per opcode:
//!
//! * `serve/<op>_miss` — every request names fresh coordinates, so the
//!   cache never hits and the cost is dominated by model evaluation;
//! * `serve/<op>_hit` — one hot request repeated, so after the first
//!   round-trip the router answers from the LRU.
//!
//! The artifact `BENCH_serve.json` reports the *server-side* per-opcode
//! p50/p99 (from the STATS histograms — the same numbers an operator
//! reads off a production daemon) and the aggregate cache hit rate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_serve::{request, BatchSub, Client, ModelRegistry, ServeOptions, Server, Status};
use tpcp_tensor::random_factor;
use twopcp::{Model, ModelMeta};

/// Where the machine-readable artifact lands (the workspace root).
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

const DIMS: [usize; 3] = [64, 48, 32];
const RANK: usize = 16;

fn build_model(dir: &std::path::Path) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let factors: Vec<Mat> = DIMS
        .iter()
        .map(|&d| random_factor(d, RANK, &mut rng))
        .collect();
    let model = Model::new(
        ModelMeta {
            name: "bench".into(),
            rank: RANK,
            dims: DIMS.to_vec(),
            seed: 17,
            fit: 0.97,
            schedule: "HO".into(),
            parts: vec![2],
            compress: None,
        },
        CpModel::new(vec![1.0; RANK], factors).unwrap(),
    )
    .unwrap();
    model.save(dir.join("bench.2pcpm")).unwrap();
}

fn start_server(dir: &std::path::Path) -> (Server, String) {
    let registry = Arc::new(ModelRegistry::open(dir).unwrap());
    let mut opts = ServeOptions::new(dir);
    opts.addr = "127.0.0.1:0".into();
    let server = Server::start_with_registry(opts, registry).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Varied coordinates so `_miss` rounds never repeat a request payload.
fn coords(i: usize) -> Vec<usize> {
    DIMS.iter()
        .enumerate()
        .map(|(m, &d)| (i * 7 + m * 3 + i / d) % d)
        .collect()
}

fn bench_opcodes(c: &mut Criterion, addr: &str) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);

    let mut client = Client::connect(addr).unwrap();
    let mut i = 0usize;

    group.bench_function("ping", |b| {
        b.iter(|| client.ping().unwrap());
    });
    group.bench_function("entry_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.entry("bench", &coords(i)).unwrap())
        });
    });
    group.bench_function("entry_hit", |b| {
        b.iter(|| black_box(client.entry("bench", &[1, 2, 3]).unwrap()));
    });
    group.bench_function("fiber_miss", |b| {
        b.iter(|| {
            i += 1;
            let cs = coords(i);
            black_box(client.fiber("bench", 0, &cs[1..]).unwrap())
        });
    });
    group.bench_function("fiber_hit", |b| {
        b.iter(|| black_box(client.fiber("bench", 0, &[2, 3]).unwrap()));
    });
    group.bench_function("slice_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.slice("bench", 0, 1, &[i % DIMS[2]]).unwrap())
        });
    });
    group.bench_function("slice_hit", |b| {
        b.iter(|| black_box(client.slice("bench", 0, 1, &[5]).unwrap()));
    });
    group.bench_function("top_k_miss", |b| {
        b.iter(|| {
            i += 1;
            let cs = coords(i);
            black_box(client.top_k("bench", 0, &cs[1..], 8).unwrap())
        });
    });
    group.bench_function("top_k_hit", |b| {
        b.iter(|| black_box(client.top_k("bench", 0, &[2, 3], 8).unwrap()));
    });
    group.bench_function("similar_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.similar("bench", 0, i % DIMS[0], 8).unwrap())
        });
    });
    group.bench_function("similar_hit", |b| {
        b.iter(|| black_box(client.similar("bench", 0, 7, 8).unwrap()));
    });
    group.bench_function("meta", |b| {
        b.iter(|| black_box(client.meta("bench").unwrap()));
    });
    group.finish();
}

/// The BATCH workload size the artifact reports (the acceptance target:
/// ≥5× the single-frame request rate at this size).
const BATCH_SIZE: usize = 64;

/// One mixed 64-sub workload: mostly GET_ENTRY with TOP_K sprinkled in,
/// fresh coordinates derived from `base` so the cache never flatters a
/// round.
fn batch_workload(base: usize) -> Vec<BatchSub> {
    (0..BATCH_SIZE)
        .map(|j| {
            let cs = coords(base * BATCH_SIZE + j);
            if j % 4 == 3 {
                request::top_k("bench", 0, &cs[1..], 8)
            } else {
                request::entry("bench", &cs)
            }
        })
        .collect()
}

fn bench_batch(c: &mut Criterion, addr: &str) {
    let mut group = c.benchmark_group("serve_batch");
    group.sample_size(20);

    let mut client = Client::connect(addr).unwrap();
    let mut i = 0usize;

    // The serial baseline: the same 64 requests as 64 single frames.
    group.bench_function("single_64", |b| {
        b.iter(|| {
            i += 1;
            for sub in batch_workload(i) {
                black_box(client.pipeline(std::slice::from_ref(&sub)).unwrap());
            }
        });
    });
    // One BATCH envelope carrying all 64 (one round trip, grouped eval).
    group.bench_function("batch_64", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.batch(&batch_workload(i)).unwrap())
        });
    });
    // 64 single frames pipelined on the connection (many in flight).
    group.bench_function("pipeline_64", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.pipeline(&batch_workload(i)).unwrap())
        });
    });
    group.finish();
}

struct BatchSpeedup {
    single_rps: f64,
    batch_rps: f64,
    pipeline_rps: f64,
    bitwise_equal: bool,
}

/// Measures requests/sec of the three transports over identical mixed
/// workloads, and checks one batched round bitwise against the serial
/// path.
fn measure_batch_speedup(addr: &str) -> BatchSpeedup {
    const ROUNDS: usize = 30;
    let mut client = Client::connect(addr).unwrap();

    // Bitwise gate first: one workload through both paths.
    let subs = batch_workload(900_000);
    let batched = client.batch(&subs).unwrap();
    let bitwise_equal = subs.iter().zip(&batched).all(|(sub, resp)| {
        let serial = client.pipeline(std::slice::from_ref(sub)).unwrap();
        resp.status == Status::Ok as u16
            && serial[0].0 == resp.status
            && serial[0].1 == resp.payload
    });

    let t = std::time::Instant::now();
    for r in 0..ROUNDS {
        for sub in batch_workload(1_000_000 + r) {
            black_box(client.pipeline(std::slice::from_ref(&sub)).unwrap());
        }
    }
    let single_rps = (ROUNDS * BATCH_SIZE) as f64 / t.elapsed().as_secs_f64();

    let t = std::time::Instant::now();
    for r in 0..ROUNDS {
        black_box(client.batch(&batch_workload(2_000_000 + r)).unwrap());
    }
    let batch_rps = (ROUNDS * BATCH_SIZE) as f64 / t.elapsed().as_secs_f64();

    let t = std::time::Instant::now();
    for r in 0..ROUNDS {
        black_box(client.pipeline(&batch_workload(3_000_000 + r)).unwrap());
    }
    let pipeline_rps = (ROUNDS * BATCH_SIZE) as f64 / t.elapsed().as_secs_f64();

    BatchSpeedup {
        single_rps,
        batch_rps,
        pipeline_rps,
        bitwise_equal,
    }
}

fn write_artifact(addr: &str, batch: &BatchSpeedup) {
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();

    let mut out = String::from("{\n  \"bench\": \"serve\",\n  \"opcodes\": [\n");
    let reported: Vec<_> = stats.ops.iter().filter(|s| s.snapshot.count > 0).collect();
    for (i, op) in reported.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"opcode\": \"{}\", \"count\": {}, \"errors\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {:.1}}}",
            op.name,
            op.snapshot.count,
            op.snapshot.errors,
            op.snapshot.quantile_us(0.50),
            op.snapshot.quantile_us(0.99),
            op.snapshot.total_ns as f64 / 1000.0 / op.snapshot.count.max(1) as f64,
        ));
        out.push_str(if i + 1 < reported.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let total = stats.cache_hits + stats.cache_misses;
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n",
        stats.cache_hits,
        stats.cache_misses,
        if total == 0 {
            0.0
        } else {
            stats.cache_hits as f64 / total as f64
        }
    ));
    out.push_str(&format!(
        "  \"batch\": {{\"batch_size\": {BATCH_SIZE}, \"single_rps\": {:.0}, \
         \"batch_rps\": {:.0}, \"pipeline_rps\": {:.0}, \"batch_speedup\": {:.2}, \
         \"pipeline_speedup\": {:.2}, \"bitwise_equal\": {}}},\n",
        batch.single_rps,
        batch.batch_rps,
        batch.pipeline_rps,
        batch.batch_rps / batch.single_rps,
        batch.pipeline_rps / batch.single_rps,
        batch.bitwise_equal,
    ));
    out.push_str(
        "  \"notes\": \"p50/p99 are server-side, read from the STATS log2-microsecond \
         histograms over the whole bench run (miss- and hit-shaped traffic mixed); \
         _hit cells in the criterion console output isolate cached responses, _miss \
         cells isolate fresh evaluation. The batch section compares identical mixed \
         entry/top-k workloads over three transports: serial single frames, one BATCH \
         envelope, and pipelined single frames; *_rps are client-observed requests per \
         second and bitwise_equal confirms batched payloads match the serial path \
         byte for byte.\"\n}\n",
    );
    match std::fs::write(ARTIFACT_PATH, &out) {
        Ok(()) => eprintln!("serve: artifact written to {ARTIFACT_PATH}"),
        Err(e) => eprintln!("serve: could not write artifact: {e}"),
    }
}

fn bench_serve(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("tpcp_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    build_model(&dir);
    let (server, addr) = start_server(&dir);

    bench_opcodes(c, &addr);
    bench_batch(c, &addr);
    let speedup = measure_batch_speedup(&addr);
    write_artifact(&addr, &speedup);

    let mut admin = Client::connect(&addr).unwrap();
    admin.shutdown().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
