//! Ablation microbenchmarks for the design choices called out in
//! DESIGN.md:
//!
//! * `curves/*` — Morton vs Hilbert mapping cost (§VI-C2 argues Z-order
//!   has the cheaper mapping);
//! * `mttkrp/*` — fused 3-mode kernel vs the textbook unfold·Khatri-Rao
//!   materialisation;
//! * `mttkrp_par/*` — the fused kernel's thread scaling (serial vs 2 vs 4
//!   worker threads on the `tpcp-par` budget; results are bit-identical,
//!   only the wall clock moves);
//! * `pq/*` — Observation #2: in-place cached `P` refresh vs recomputing
//!   the slab's `P` matrices from scratch on every update;
//! * `fit/*` — zero-I/O surrogate fit vs exact fit against the tensor;
//! * `solve/*` — the ridge-guarded Cholesky Gram solve;
//! * `prefetch/*` — the asynchronous Phase-2 I/O pipeline on vs off
//!   (policy × buffer fraction), with per-cell `stall_ns`/swap reporting;
//! * `phase1_ingest/*` — streaming Phase-1 ingest ablation: in-memory vs
//!   file-backed vs generator block sources × 1/3 unit-store shards, with
//!   per-cell peak-RSS proxy (bytes materialised at once) and total
//!   streamed bytes.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use tpcp_cp::CpModel;
use tpcp_linalg::{khatri_rao, solve, Mat};
use tpcp_par::ParConfig;
use tpcp_partition::Grid;
use tpcp_schedule::{gray_coords, hilbert_index, morton_index, ScheduleKind, UnitId};
use tpcp_storage::PolicyKind;
use tpcp_tensor::{random_factor, DenseTensor};
use twopcp::{simulate_swaps, PqCache, SwapSimConfig};

fn bench_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("curves");
    let coords: Vec<[usize; 3]> = (0..4096)
        .map(|i| [i % 16, (i / 16) % 16, i / 256])
        .collect();
    group.bench_function("gray_4096", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..4096usize {
                acc ^= gray_coords(black_box(i), &[16, 16, 16])[0];
            }
            black_box(acc)
        })
    });
    group.bench_function("morton_4096", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for c in &coords {
                acc ^= morton_index(black_box(c), 4);
            }
            black_box(acc)
        })
    });
    group.bench_function("hilbert_4096", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for c in &coords {
                acc ^= hilbert_index(black_box(c), 4);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_mttkrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp");
    group.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dims = [24usize, 24, 24];
    let f = 8;
    let x = tpcp_tensor::random_dense(&dims, &mut rng);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    let refs: Vec<&Mat> = factors.iter().collect();

    group.bench_function("fused_3mode", |b| {
        b.iter(|| black_box(tpcp_cp::mttkrp_dense(black_box(&x), &refs, 1).unwrap()))
    });
    group.bench_function("unfold_khatri_rao", |b| {
        b.iter(|| {
            let others = [&factors[0], &factors[2]];
            let kr = khatri_rao(&others).unwrap();
            black_box(x.unfold(1).unwrap().matmul(&kr).unwrap())
        })
    });
    group.finish();
}

/// Parallel-MTTKRP ablation: the same fused 3-mode kernel at 1, 2 and 4
/// worker threads. The tensor is large enough (96³ × F=16) that the
/// per-fibre GEMMs dominate and the fan-out amortises; on a multi-core
/// machine the 2- and 4-thread rows should scale near-linearly, while the
/// output stays bit-identical to the serial row by construction.
fn bench_mttkrp_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp_par");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let dims = [96usize, 96, 96];
    let f = 16;
    let x = tpcp_tensor::random_dense(&dims, &mut rng);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    let refs: Vec<&Mat> = factors.iter().collect();

    for threads in [1usize, 2, 4] {
        let par = ParConfig::with_threads(threads);
        group.bench_function(format!("fused_3mode_{threads}t"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for mode in 0..3 {
                    let m = tpcp_cp::mttkrp_dense_par(black_box(&x), &refs, mode, &par).unwrap();
                    acc += m.get(0, 0);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_pq(c: &mut Criterion) {
    let mut group = c.benchmark_group("pq");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let grid = Grid::uniform(&[64, 64, 64], 4);
    let f = 16;
    let mut pq = PqCache::new(&grid, f);
    // Prime the cache and build the slab's U and A.
    let a = random_factor(16, f, &mut rng);
    let slab: Vec<usize> = grid.slab(0, 0).collect();
    let us: Vec<Mat> = slab
        .iter()
        .map(|_| random_factor(16, f, &mut rng))
        .collect();
    for block in 0..grid.num_blocks() {
        for mode in 0..3 {
            pq.set_p(block, mode, random_factor(f, f, &mut rng));
        }
    }
    for unit in 0..grid.num_units() {
        pq.set_q(
            &grid,
            UnitId::from_linear(&grid, unit),
            random_factor(f, f, &mut rng),
        );
    }

    // Observation #2 ablation: with the in-place cache, a mode-0 update
    // combines F×F mats; without it every P(h≠0) would be recomputed from
    // its (rows×F) U and A matrices.
    group.bench_function("cached_hadamard_chain", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &l in &slab {
                acc += pq.p_hadamard_excluding(black_box(l), 0).unwrap().sum();
            }
            black_box(acc)
        })
    });
    group.bench_function("recompute_from_factors", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for u in &us {
                // Recompute both other-mode P matrices from scratch.
                let p1 = u.t_matmul(black_box(&a)).unwrap();
                let p2 = u.t_matmul(black_box(&a)).unwrap();
                acc += p1.hadamard(&p2).unwrap().sum();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit");
    group.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let dims = [32usize, 32, 32];
    let f = 8;
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    let model = CpModel::new(vec![1.0; f], factors).unwrap();
    let x: DenseTensor = model.reconstruct_dense();

    group.bench_function("exact_fit_dense", |b| {
        b.iter(|| black_box(model.fit_dense(black_box(&x)).unwrap()))
    });

    let grid = Grid::uniform(&dims, 2);
    let mut pq = PqCache::new(&grid, f);
    for block in 0..grid.num_blocks() {
        for mode in 0..3 {
            pq.set_p(block, mode, random_factor(f, f, &mut rng));
        }
    }
    for unit in 0..grid.num_units() {
        pq.set_q(
            &grid,
            UnitId::from_linear(&grid, unit),
            random_factor(f, f, &mut rng),
        );
    }
    let u_norms = vec![1.0; grid.num_blocks()];
    group.bench_function("surrogate_fit", |b| {
        b.iter(|| black_box(pq.surrogate_fit(&grid, black_box(&u_norms)).unwrap()))
    });
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let f = 64;
    let basis = random_factor(f + 8, f, &mut rng);
    let mut s = basis.gram();
    s.add_assign(&Mat::identity(f)).unwrap();
    let t = random_factor(256, f, &mut rng);
    group.bench_function("gram_system_64", |b| {
        b.iter(|| black_box(solve::solve_gram_system(black_box(&t), &s, 1e-9).unwrap()))
    });
    group.finish();
}

/// Extension ablation: Gray-order vs Hilbert-order swap counts — both have
/// unit-step transitions, but Gray handles non-power-of-two grids natively
/// with an O(order) mapping.
fn bench_gray_vs_hilbert(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedules");
    group.sample_size(10);
    for kind in [ScheduleKind::HilbertOrder, ScheduleKind::GrayOrder] {
        group.bench_function(format!("swapsim_8cube_{}", kind.abbrev()), |b| {
            b.iter(|| {
                let r = simulate_swaps(&SwapSimConfig {
                    parts: vec![8; 3],
                    schedule: kind,
                    policy: PolicyKind::Forward,
                    buffer_fraction: 1.0 / 3.0,
                    virtual_iters: 130,
                })
                .unwrap();
                black_box(r.steady_swaps)
            })
        });
    }
    group.finish();
}

/// Prefetch-pipeline ablation: Phase-2 refinement on a disk-backed store
/// with the asynchronous prefetcher on vs off, across replacement policy
/// and buffer fraction. The timed quantity is the whole `refine` run; a
/// one-shot warm-up run per cell prints the stall/swap accounting
/// (`stall_ns` is what the pipeline removes from the critical path — swap
/// counts are identical by construction and asserted here).
fn bench_prefetch(c: &mut Criterion) {
    use tpcp_storage::DiskStore;
    use twopcp::{refine, run_phase1_dense, PrefetchConfig, TwoPcpConfig};

    let mut group = c.benchmark_group("prefetch");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let dims = [32usize, 32, 32];
    let f = 8;
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    let x: DenseTensor = CpModel::new(vec![1.0; f], factors)
        .unwrap()
        .reconstruct_dense();
    let scratch = std::env::temp_dir().join(format!("tpcp_bench_prefetch_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    for policy in [PolicyKind::Lru, PolicyKind::Forward] {
        for fraction in [0.34, 0.5] {
            let cfg = |pf: PrefetchConfig| {
                TwoPcpConfig::new(f)
                    .parts(vec![2])
                    .schedule(ScheduleKind::HilbertOrder)
                    .policy(policy)
                    .buffer_fraction(fraction)
                    .max_virtual_iters(6)
                    .tol(0.0)
                    .prefetch(pf)
            };
            let dir = scratch.join(format!("{}_{fraction}", policy.abbrev()));
            // Materialise the unit store once; each refine re-opens it.
            let base = cfg(PrefetchConfig::disabled());
            let mut store = DiskStore::open(&dir).unwrap();
            let p1 = run_phase1_dense(&x, &base, &mut store).unwrap();
            drop(store);

            let mut cell = |name: String, pf: PrefetchConfig| {
                let run_cfg = cfg(pf);
                let once = refine(
                    &p1.grid,
                    DiskStore::open(&dir).unwrap(),
                    &run_cfg,
                    &p1.u_norm_sq,
                )
                .unwrap();
                eprintln!(
                    "prefetch/{name}: swaps={} stall={:.3}ms prefetch_hits={}",
                    once.stats.io.fetches,
                    once.stats.io.stall_ms(),
                    once.stats.io.prefetch_hits,
                );
                let stats = once.stats.io;
                group.bench_function(name.as_str(), |b| {
                    b.iter(|| {
                        let out = refine(
                            &p1.grid,
                            DiskStore::open(&dir).unwrap(),
                            &run_cfg,
                            &p1.u_norm_sq,
                        )
                        .unwrap();
                        black_box(out.stats.io.fetches)
                    })
                });
                stats
            };
            let off = cell(
                format!("off_{}_f{fraction}", policy.abbrev()),
                PrefetchConfig::disabled(),
            );
            let on = cell(
                format!("on_{}_f{fraction}", policy.abbrev()),
                PrefetchConfig::with_depth(6),
            );
            assert_eq!(
                off.fetches, on.fetches,
                "prefetch changed the swap count — it must only move bytes"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    group.finish();
}

fn bench_phase1_ingest(c: &mut Criterion) {
    use tpcp_datasets::ModelBlockSource;
    use tpcp_partition::{BlockSource, DenseMemorySource, FileTensorSource};
    use tpcp_storage::ShardedStore;
    use twopcp::{run_phase1_source, TwoPcpConfig};

    let mut group = c.benchmark_group("phase1_ingest");
    group.sample_size(10);
    let dims = [24usize, 24, 24];
    let rank = 4;
    let seed = 33;
    let cfg = TwoPcpConfig::new(rank).parts(vec![2]).seed(seed).threads(1);
    let grid = Grid::new(&dims, &[2, 2, 2]);
    let x = ModelBlockSource::low_rank(&dims, rank, seed).materialize(&grid);
    let path = std::env::temp_dir().join(format!("tpcp_bench_ingest_{}.raw", std::process::id()));
    FileTensorSource::write_dense(&path, &x).unwrap();

    enum Kind {
        Memory,
        File,
        Generator,
    }
    for (name, kind) in [
        ("memory", Kind::Memory),
        ("file", Kind::File),
        ("generator", Kind::Generator),
    ] {
        for shards in [1usize, 3] {
            // One accounted run per cell: the peak-RSS proxy (bytes
            // materialised at once) and the total streamed bytes.
            let run = |src: &mut dyn BlockSource| {
                let mut store = ShardedStore::mem(shards);
                run_phase1_source(src, &cfg, &mut store).unwrap()
            };
            let p1 = match kind {
                Kind::Memory => run(&mut DenseMemorySource::new(&x)),
                Kind::File => run(&mut FileTensorSource::open(&path).unwrap()),
                Kind::Generator => run(&mut ModelBlockSource::low_rank(&dims, rank, seed)),
            };
            eprintln!(
                "phase1_ingest/{name}_s{shards}: peak_block_bytes={} ingested_bytes={} unit_bytes={}",
                p1.peak_block_bytes, p1.ingested_bytes, p1.total_unit_bytes,
            );
            group.bench_function(format!("{name}_s{shards}"), |b| {
                b.iter(|| {
                    let p1 = match kind {
                        Kind::Memory => run(&mut DenseMemorySource::new(&x)),
                        Kind::File => run(&mut FileTensorSource::open(&path).unwrap()),
                        Kind::Generator => run(&mut ModelBlockSource::low_rank(&dims, rank, seed)),
                    };
                    black_box(p1.peak_block_bytes)
                })
            });
            // The streaming bound: a serial budget never materialises
            // more than the largest block at once.
            let largest = grid
                .iter_blocks()
                .map(|c| grid.block_dims(&c).iter().product::<usize>() * 8)
                .max()
                .unwrap() as u64;
            assert_eq!(p1.peak_block_bytes, largest);
        }
    }
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(
    benches,
    bench_curves,
    bench_mttkrp,
    bench_mttkrp_par,
    bench_pq,
    bench_fit,
    bench_solve,
    bench_prefetch,
    bench_phase1_ingest,
    bench_gray_vs_hilbert
);
criterion_main!(benches);
