//! Criterion bench mirroring one Figure 13 cell per schedule: full
//! two-phase decomposition of the Epinions-like tensor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpcp_datasets::epinions_like;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{TwoPcp, TwoPcpConfig};

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    let x = epinions_like(17);
    for schedule in ScheduleKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("epinions_2x2x2", schedule.abbrev()),
            &schedule,
            |b, &schedule| {
                b.iter(|| {
                    let outcome = TwoPcp::new(
                        TwoPcpConfig::new(5)
                            .parts(vec![2])
                            .schedule(schedule)
                            .policy(PolicyKind::Forward)
                            .buffer_fraction(1.0 / 3.0)
                            .max_virtual_iters(20)
                            .tol(1e-2),
                    )
                    .decompose_sparse(black_box(&x))
                    .unwrap();
                    black_box(outcome.fit)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
