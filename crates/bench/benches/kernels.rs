//! Kernel backend ablation: `TiledKernel` vs `ReferenceKernel` on the
//! five hot compute primitives behind the backend seam.
//!
//! Each cell measures one entry point — `matmul`, `t_matmul`, `matmul_t`,
//! `gram`, and the fused dense 3-mode MTTKRP — at the paper's working
//! rank (F = 16) on Phase-2-representative shapes, for both backends at
//! 1 and 4 threads. The two backends are bitwise-identical by contract
//! (pinned by the `kernel_equiv` suites), so the ratio is pure speed.
//!
//! A one-shot accounted pass per cell is written to `BENCH_kernels.json`
//! at the workspace root: median ns/call, nominal GFLOP/s, and the
//! tiled-vs-reference speedup ratio per (op × threads) cell, so the perf
//! trajectory stays machine-readable across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;
use tpcp_cp::mttkrp_dense_kernel;
use tpcp_linalg::{KernelKind, Mat};
use tpcp_par::ParConfig;
use tpcp_tensor::{random_factor, DenseTensor};

/// Where the machine-readable artifact lands (the workspace root).
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");

/// The paper's working rank: every shape below is F = 16.
const RANK: usize = 16;
/// Long mode of the matrix operands (a Phase-2 slab's row count).
const ROWS: usize = 960;
/// Dense cube side for the fused MTTKRP (a Phase-1 block).
const DIM: usize = 48;

/// One artifact line: a cell name and its measured quantities.
struct Cell {
    name: String,
    fields: Vec<(&'static str, f64)>,
}

fn write_artifact(cells: &[Cell]) {
    let mut out = String::from("{\n  \"bench\": \"kernels\",\n  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{}\"", cell.name));
        for (k, v) in &cell.fields {
            if v.fract() == 0.0 && v.abs() < 9e15 {
                out.push_str(&format!(", \"{k}\": {}", *v as i64));
            } else {
                out.push_str(&format!(", \"{k}\": {v:.3}"));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"notes\": \"ratio = reference_ns / tiled_ns (higher is better for the \
         tiled backend). GFLOP/s are nominal: 2mkn for the products, 2mk^2 for \
         gram (full, though tiled computes half and mirrors), 2|X|F for the \
         fused MTTKRP. Backends are bitwise-identical by contract, so the \
         ratio is pure speed.\"\n",
    );
    out.push_str("}\n");
    match std::fs::write(ARTIFACT_PATH, &out) {
        Ok(()) => eprintln!("kernels: artifact written to {ARTIFACT_PATH}"),
        Err(e) => eprintln!("kernels: could not write artifact: {e}"),
    }
}

/// Median ns per call of `f` over a few accounted batches (the artifact's
/// one-shot number; criterion's own loop prints the console figures).
fn measure_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::new();
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Fixtures {
    a: Mat,         // ROWS × RANK: the slab factor / MTTKRP output shape
    small: Mat,     // RANK × RANK: the Hadamard-of-grams operand
    b_tall: Mat,    // ROWS × RANK: second tall operand for t_matmul
    x: DenseTensor, // DIM³ dense block
    factors: Vec<Mat>,
}

fn fixtures() -> Fixtures {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    Fixtures {
        a: random_factor(ROWS, RANK, &mut rng),
        small: random_factor(RANK, RANK, &mut rng),
        b_tall: random_factor(ROWS, RANK, &mut rng),
        x: tpcp_tensor::random_dense(&[DIM, DIM, DIM], &mut rng),
        factors: (0..3).map(|_| random_factor(DIM, RANK, &mut rng)).collect(),
    }
}

/// One measurable entry point behind the seam.
type Op<'a> = (&'static str, f64, Box<dyn Fn(&ParConfig, KernelKind) + 'a>);

/// (op name, nominal flops, runner) for each kernel entry point.
fn ops(fx: &Fixtures) -> Vec<Op<'_>> {
    let refs: Vec<&Mat> = fx.factors.iter().collect();
    let mkn = (ROWS * RANK * RANK) as f64;
    vec![
        (
            "matmul",
            2.0 * mkn,
            Box::new(|par: &ParConfig, kind: KernelKind| {
                black_box(fx.a.matmul_kernel(&fx.small, par, kind).unwrap());
            }),
        ),
        (
            "t_matmul",
            2.0 * mkn,
            Box::new(|par: &ParConfig, kind: KernelKind| {
                black_box(fx.a.t_matmul_kernel(&fx.b_tall, par, kind).unwrap());
            }),
        ),
        (
            "matmul_t",
            2.0 * mkn,
            Box::new(|par: &ParConfig, kind: KernelKind| {
                black_box(fx.a.matmul_t_kernel(&fx.small, par, kind).unwrap());
            }),
        ),
        (
            "gram",
            2.0 * mkn,
            Box::new(|par: &ParConfig, kind: KernelKind| {
                black_box(fx.a.gram_kernel(par, kind));
            }),
        ),
        (
            "mttkrp",
            2.0 * (DIM * DIM * DIM) as f64 * RANK as f64,
            Box::new(move |par: &ParConfig, kind: KernelKind| {
                black_box(mttkrp_dense_kernel(&fx.x, &refs, 0, par, kind).unwrap());
            }),
        ),
    ]
}

fn bench_kernels(c: &mut Criterion) {
    let fx = fixtures();
    let mut cells = Vec::new();

    let mut group = c.benchmark_group("kernels");
    group.sample_size(15);
    for (op, flops, run) in ops(&fx) {
        for threads in [1usize, 4] {
            let par = ParConfig::with_threads(threads);
            let mut ns = [0.0f64; 2];
            for (slot, kind) in [(0, KernelKind::Reference), (1, KernelKind::Tiled)] {
                let label = kind.label();
                let name = format!("{op}_{label}_t{threads}");
                group.bench_function(name.as_str(), |b| b.iter(|| run(&par, kind)));
                let iters = if op == "mttkrp" { 10 } else { 40 };
                ns[slot] = measure_ns(iters, || run(&par, kind));
                let gflops = flops / ns[slot];
                eprintln!(
                    "kernels/{name}: {:.0} ns/call, {gflops:.2} GFLOP/s",
                    ns[slot]
                );
                cells.push(Cell {
                    name,
                    fields: vec![("ns_per_call", ns[slot]), ("gflops", gflops)],
                });
            }
            let ratio = ns[0] / ns[1];
            eprintln!("kernels/{op}_ratio_t{threads}: {ratio:.2}x tiled over reference");
            cells.push(Cell {
                name: format!("{op}_ratio_t{threads}"),
                fields: vec![("tiled_over_reference", ratio)],
            });
        }
    }
    group.finish();
    write_artifact(&cells);
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
