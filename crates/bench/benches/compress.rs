//! Compress-then-decompose vs the exact two-phase pipeline: end-to-end
//! wall time and fit on low-mlrank synthetics.
//!
//! Each case runs the full `TwoPcp` driver twice on the same tensor at a
//! matched tolerance: once on the default exact path (Phase 1 + Phase 2)
//! and once with [`CompressOptions`] set, which replaces both phases by
//! streaming HOSVD compression, CP on the small core, expansion and one
//! exact polish sweep. The data is CP-structured (rank = min mlrank), so
//! both paths can reach the same fit and the wall-time ratio isolates the
//! pipeline, not the model capacity.
//!
//! A one-shot accounted pass per case is written to `BENCH_compress.json`
//! at the workspace root: median ns for both paths, their fits, the gap,
//! and the speedup — the quantities behind the issue's ≥5× wall-time /
//! ≤1e-3 fit-gap acceptance bar (order-4 cell).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;
use tpcp_cp::{CompressOptions, CpModel};
use tpcp_linalg::Mat;
use tpcp_tensor::{random_factor, DenseTensor};
use twopcp::{KernelKind, TwoPcp, TwoPcpConfig, TwoPcpOutcome};

/// Where the machine-readable artifact lands (the workspace root).
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compress.json");

/// One artifact line: a cell name and its measured quantities.
struct Cell {
    name: String,
    fields: Vec<(&'static str, f64)>,
}

fn write_artifact(cells: &[Cell]) {
    let mut out = String::from("{\n  \"bench\": \"compress\",\n  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{}\"", cell.name));
        for (k, v) in &cell.fields {
            if v.fract() == 0.0 && v.abs() < 9e15 {
                out.push_str(&format!(", \"{k}\": {}", *v as i64));
            } else {
                out.push_str(&format!(", \"{k}\": {v:.6}"));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"notes\": \"Each cell runs the full TwoPcp driver end to end on \
         the same CP-structured low-mlrank tensor at matched tolerance: \
         exact = default two-phase path; compress = streaming HOSVD \
         compression, CP on the core, expansion, one exact polish sweep. \
         speedup = exact_ns / compress_ns; fit_gap = fit_exact - \
         fit_compress (positive means the exact path fit better). \
         Acceptance: order4 speedup >= 5 at fit_gap <= 1e-3.\"\n",
    );
    out.push_str("}\n");
    match std::fs::write(ARTIFACT_PATH, &out) {
        Ok(()) => eprintln!("compress: artifact written to {ARTIFACT_PATH}"),
        Err(e) => eprintln!("compress: could not write artifact: {e}"),
    }
}

/// Median wall ns per call of `f` over `reps` accounted runs.
fn measure_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A CP-structured tensor of rank `f` (multilinear rank ≤ `f` per mode).
fn low_mlrank_tensor(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    CpModel::new(vec![1.0; f], factors)
        .unwrap()
        .reconstruct_dense()
}

struct Case {
    label: &'static str,
    dims: Vec<usize>,
    /// CP rank of the synthetic = per-mode mlrank cap handed to compress.
    f: usize,
    x: DenseTensor,
}

fn cases() -> Vec<Case> {
    let build = |label, dims: Vec<usize>, f, seed| Case {
        label,
        f,
        x: low_mlrank_tensor(&dims, f, seed),
        dims,
    };
    vec![
        build("order3", vec![64, 64, 64], 4, 3),
        // The acceptance cell: order-4, low mlrank, Phase-1-block scale.
        build("order4", vec![32, 32, 32, 32], 4, 4),
    ]
}

fn config(case: &Case, compress: bool) -> TwoPcpConfig {
    let mut cfg = TwoPcpConfig::new(case.f)
        .parts(vec![2])
        .max_virtual_iters(30)
        .tol(1e-6)
        .seed(11);
    if compress {
        cfg = cfg.compress(
            CompressOptions::builder()
                .mlrank(vec![case.f; case.dims.len()])
                .build()
                .unwrap(),
        );
    }
    cfg
}

fn run(case: &Case, compress: bool) -> TwoPcpOutcome {
    TwoPcp::new(config(case, compress))
        .decompose_dense(&case.x)
        .expect("decomposition failed")
}

fn bench_compress(c: &mut Criterion) {
    let kernel = KernelKind::auto().resolved().label();
    let cases = cases();
    let mut cells = Vec::new();

    let mut group = c.benchmark_group("compress");
    group.sample_size(10);
    for case in &cases {
        let exact_fit = run(case, false).fit;
        let compress_out = run(case, true);
        let compress_fit = compress_out.fit;
        let prov = compress_out.compress.expect("compress run has provenance");

        group.bench_function(format!("{}_exact_{kernel}", case.label), |b| {
            b.iter(|| black_box(run(case, false)))
        });
        group.bench_function(format!("{}_compress_{kernel}", case.label), |b| {
            b.iter(|| black_box(run(case, true)))
        });

        let exact_ns = measure_ns(3, || {
            black_box(run(case, false));
        });
        let compress_ns = measure_ns(3, || {
            black_box(run(case, true));
        });
        let speedup = exact_ns / compress_ns;
        eprintln!(
            "compress/{}: exact {:.1} ms (fit {exact_fit:.6}), compressed {:.1} ms \
             (fit {compress_fit:.6}, core {:?}, energy {:.4}) — {speedup:.2}x",
            case.label,
            exact_ns / 1e6,
            compress_ns / 1e6,
            prov.core_shape,
            prov.energy,
        );
        cells.push(Cell {
            name: case.label.to_string(),
            fields: vec![
                ("exact_ns", exact_ns),
                ("compress_ns", compress_ns),
                ("speedup", speedup),
                ("fit_exact", exact_fit),
                ("fit_compress", compress_fit),
                ("fit_gap", exact_fit - compress_fit),
                ("retained_energy", prov.energy),
            ],
        });
    }
    group.finish();
    write_artifact(&cells);
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
