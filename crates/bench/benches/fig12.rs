//! Criterion bench over the Figure 12 swap simulator: per-cell cost of the
//! schedule × policy sweep (the simulation itself is the artefact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{simulate_swaps, SwapSimConfig};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for schedule in ScheduleKind::ALL {
        for policy in PolicyKind::ALL {
            let id = BenchmarkId::new(schedule.abbrev(), policy.abbrev());
            group.bench_with_input(id, &(schedule, policy), |b, &(schedule, policy)| {
                b.iter(|| {
                    let report = simulate_swaps(&SwapSimConfig {
                        parts: vec![8; 3],
                        schedule,
                        policy,
                        buffer_fraction: 1.0 / 3.0,
                        virtual_iters: 130,
                    })
                    .unwrap();
                    black_box(report.steady_swaps)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
