//! Benchmark harness regenerating every table and figure of the 2PCP
//! paper's evaluation (§VIII).
//!
//! Each experiment lives in its own module with a `run` entry point shared
//! by the corresponding binary (`cargo run -p tpcp-bench --release --bin
//! tableN|figN`) and Criterion bench. Default parameters are scaled to
//! laptop budgets (documented per module, with the scaling argument in
//! DESIGN.md §3); `--full` restores the paper-scale settings where
//! feasible.
//!
//! | target | paper artefact |
//! |---|---|
//! | [`table1`] | Table I (+ Figure 11): 2PCP vs HaTen2 on dense tensors |
//! | [`table2`] | Table II: Naive CP vs 2PCP with LRU/FOR at 2³/4³ |
//! | [`fig12`] | Figure 12 (a–c): swaps/iteration sweep |
//! | [`fig13`] | Figure 13 (a–b): schedule accuracy relative to MC |

pub mod args;
pub mod fig12;
pub mod fig13;
pub mod fmt;
pub mod table1;
pub mod table2;
