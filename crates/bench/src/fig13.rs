//! Figure 13 (a–b): decomposition accuracy of block-centric schedules
//! relative to the mode-centric baseline.
//!
//! Paper setting: four datasets (Epinions, Ciao, Enron, Face) × grids
//! 2³/4³/8³, buffer 1/3, rank 100, stopping at a 10⁻² per-iteration
//! improvement with virtual-iteration caps of 100 (sub-figure a) and
//! 200 (sub-figure b). Reported quantity: the relative accuracy difference
//! of FO/ZO/HO against MC — positive means the block-centric schedule
//! matched or beat the conventional one.
//!
//! Default harness setting: the synthetic dataset stand-ins (see
//! `tpcp-datasets`), rank 10, Face at 1/8 scale. `--full` restores
//! rank 100 and full-size Face.

use crate::fmt::render_table;
use tpcp_datasets::{ciao_like, enron_like, epinions_like, face_like};
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use tpcp_tensor::{DenseTensor, SparseTensor};
use twopcp::{TwoPcp, TwoPcpConfig};

/// The datasets of Figure 13, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig13Dataset {
    /// Epinions-like ⟨user, item, category⟩ ratings.
    Epinions,
    /// Ciao-like ⟨user, item, category⟩ ratings.
    Ciao,
    /// Enron-like ⟨time, from, to⟩ email with bursty time mode.
    Enron,
    /// Face-like dense image stack.
    Face,
}

impl Fig13Dataset {
    /// All four datasets.
    pub const ALL: [Fig13Dataset; 4] = [
        Fig13Dataset::Epinions,
        Fig13Dataset::Ciao,
        Fig13Dataset::Enron,
        Fig13Dataset::Face,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Fig13Dataset::Epinions => "Epinions",
            Fig13Dataset::Ciao => "Ciao",
            Fig13Dataset::Enron => "Enron",
            Fig13Dataset::Face => "Face",
        }
    }
}

enum Data {
    Dense(DenseTensor),
    Sparse(SparseTensor),
}

/// Configuration of the Figure 13 experiment.
#[derive(Clone, Debug)]
pub struct Fig13Config {
    /// Decomposition rank (paper: 100).
    pub rank: usize,
    /// Grids to sweep (partitions per mode).
    pub grids: Vec<usize>,
    /// Virtual-iteration caps (paper: 100 and 200).
    pub budgets: Vec<usize>,
    /// Buffer fraction (paper: 1/3).
    pub buffer_fraction: f64,
    /// Stopping tolerance (paper: 10⁻²).
    pub tol: f64,
    /// Downscale factor for the Face dataset.
    pub face_scale: usize,
    /// Seed for the dataset generators and ALS.
    pub seed: u64,
}

impl Fig13Config {
    /// Laptop-scale defaults.
    pub fn scaled() -> Self {
        Fig13Config {
            rank: 10,
            grids: vec![2, 4, 8],
            budgets: vec![100, 200],
            buffer_fraction: 1.0 / 3.0,
            tol: 1e-2,
            face_scale: 8,
            seed: 17,
        }
    }

    /// Paper-scale settings (rank 100, full-size Face).
    pub fn full() -> Self {
        Fig13Config {
            rank: 100,
            face_scale: 1,
            ..Fig13Config::scaled()
        }
    }
}

/// One measured cell.
#[derive(Clone, Debug)]
pub struct Fig13Cell {
    /// Dataset.
    pub dataset: Fig13Dataset,
    /// Partitions per mode.
    pub grid: usize,
    /// Virtual-iteration cap.
    pub budget: usize,
    /// Schedule.
    pub schedule: ScheduleKind,
    /// Exact fit against the input tensor.
    pub fit: f64,
}

fn load(dataset: Fig13Dataset, cfg: &Fig13Config) -> Data {
    match dataset {
        Fig13Dataset::Epinions => Data::Sparse(epinions_like(cfg.seed)),
        Fig13Dataset::Ciao => Data::Sparse(ciao_like(cfg.seed)),
        Fig13Dataset::Enron => Data::Sparse(enron_like(cfg.seed)),
        Fig13Dataset::Face => Data::Dense(face_like(cfg.seed, cfg.face_scale)),
    }
}

fn run_one(
    data: &Data,
    cfg: &Fig13Config,
    grid: usize,
    schedule: ScheduleKind,
    budget: usize,
) -> f64 {
    // Fig. 13 measures the two-phase schedule/budget trade-off; pin the
    // compressed mode off so a TPCP_COMPRESS=1 environment can't replace
    // what it measures.
    let config = TwoPcpConfig::new(cfg.rank)
        .compress_off()
        .parts(vec![grid])
        .schedule(schedule)
        .policy(PolicyKind::Forward)
        .buffer_fraction(cfg.buffer_fraction)
        .max_virtual_iters(budget)
        .tol(cfg.tol)
        .seed(cfg.seed);
    let driver = TwoPcp::new(config);
    let outcome = match data {
        Data::Dense(x) => driver.decompose_dense(x),
        Data::Sparse(x) => driver.decompose_sparse(x),
    }
    .expect("fig13 run failed");
    outcome.fit
}

/// Runs the sweep (`datasets × grids × budgets × schedules`).
///
/// # Panics
/// Panics on configuration errors.
pub fn run(cfg: &Fig13Config) -> Vec<Fig13Cell> {
    run_subset(cfg, &Fig13Dataset::ALL)
}

/// Runs the sweep on a subset of datasets (used by tests and benches).
///
/// # Panics
/// Panics on configuration errors.
pub fn run_subset(cfg: &Fig13Config, datasets: &[Fig13Dataset]) -> Vec<Fig13Cell> {
    let mut cells = Vec::new();
    for &dataset in datasets {
        let data = load(dataset, cfg);
        for &grid in &cfg.grids {
            for &budget in &cfg.budgets {
                for schedule in ScheduleKind::ALL {
                    let fit = run_one(&data, cfg, grid, schedule, budget);
                    cells.push(Fig13Cell {
                        dataset,
                        grid,
                        budget,
                        schedule,
                        fit,
                    });
                }
            }
        }
    }
    cells
}

/// Relative accuracy difference (%) of `schedule` against MC for a given
/// cell group — the quantity the figure plots.
pub fn relative_diff(cells: &[Fig13Cell], cell: &Fig13Cell) -> f64 {
    let mc = cells
        .iter()
        .find(|c| {
            c.dataset == cell.dataset
                && c.grid == cell.grid
                && c.budget == cell.budget
                && c.schedule == ScheduleKind::ModeCentric
        })
        .expect("MC baseline present");
    100.0 * (cell.fit - mc.fit) / mc.fit.abs().max(1e-9)
}

/// Renders the two paper sub-figures as tables (one per budget).
pub fn render(cfg: &Fig13Config, cells: &[Fig13Cell]) -> String {
    let mut out = String::new();
    for &budget in &cfg.budgets {
        out.push_str(&format!(
            "Figure 13 — relative accuracy vs MC (buffer {:.2}, rank {}, max {budget} virtual iterations)\n",
            cfg.buffer_fraction, cfg.rank
        ));
        let mut body = Vec::new();
        for dataset in Fig13Dataset::ALL {
            for &grid in &cfg.grids {
                let mc = cells.iter().find(|c| {
                    c.dataset == dataset
                        && c.grid == grid
                        && c.budget == budget
                        && c.schedule == ScheduleKind::ModeCentric
                });
                let Some(mc) = mc else { continue };
                let mut row = vec![
                    dataset.name().to_string(),
                    format!("{grid}x{grid}x{grid}"),
                    format!("{:.4}", mc.fit),
                ];
                for schedule in [
                    ScheduleKind::FiberOrder,
                    ScheduleKind::ZOrder,
                    ScheduleKind::HilbertOrder,
                ] {
                    let cell = cells
                        .iter()
                        .find(|c| {
                            c.dataset == dataset
                                && c.grid == grid
                                && c.budget == budget
                                && c.schedule == schedule
                        })
                        .expect("cell present");
                    row.push(format!("{:+.2}%", relative_diff(cells, cell)));
                }
                body.push(row);
            }
        }
        if body.is_empty() {
            continue;
        }
        out.push_str(&render_table(
            &["Dataset", "Grid", "MC fit", "FO", "ZO", "HO"],
            &body,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_cells_are_schedule_insensitive() {
        // The paper's core accuracy finding: on the dense Face data the
        // mode- and block-centric schedules are "virtually identical".
        let cfg = Fig13Config {
            rank: 4,
            grids: vec![2],
            budgets: vec![30],
            face_scale: 16,
            ..Fig13Config::scaled()
        };
        let cells = run_subset(&cfg, &[Fig13Dataset::Face]);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            if cell.schedule != ScheduleKind::ModeCentric {
                let d = relative_diff(&cells, cell);
                assert!(d.abs() < 5.0, "{:?} diff {d}%", cell.schedule);
            }
        }
        let rendered = render(&cfg, &cells);
        assert!(rendered.contains("Face"));
        assert!(rendered.contains("HO"));
    }

    #[test]
    fn sparse_dataset_runs_all_grids() {
        let cfg = Fig13Config {
            rank: 3,
            grids: vec![2, 4],
            budgets: vec![20],
            ..Fig13Config::scaled()
        };
        let cells = run_subset(&cfg, &[Fig13Dataset::Epinions]);
        assert_eq!(cells.len(), 2 * 4);
        for cell in &cells {
            assert!(cell.fit.is_finite(), "{cell:?}");
        }
    }
}
