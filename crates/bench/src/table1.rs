//! Table I + Figure 11: 2PCP vs HaTen2 on dense tensors.
//!
//! Paper setting: cubic dense tensors of side 500 / 1000 / 1500, density
//! 0.2, rank 10, 2×2×2 partitioning; HaTen2 limited to one iteration
//! ("due to the large execution time"); HaTen2 `FAILS` at 1500³.
//!
//! Default harness setting: sides 60 / 120 / 180 (same 1:2:3 shape, ≈578×
//! fewer non-zeros), identical density/rank/grid, and a per-reducer memory
//! cap calibrated so the largest size exceeds it — reproducing the `FAILS`
//! row mechanically rather than by wall-clock exhaustion. Pass `--full`
//! for paper-scale sides (hours of runtime and ≳30 GB of disk).

use crate::fmt::{fmt_count, fmt_duration, render_table};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tpcp_datasets::dense_uniform;
use tpcp_haten2::{haten2_cp, Haten2Config};
use tpcp_tensor::SparseTensor;
use twopcp::{TwoPcp, TwoPcpConfig};

/// Configuration of the Table I experiment.
#[derive(Clone, Debug)]
pub struct Table1Config {
    /// Cube sides to sweep.
    pub sides: Vec<usize>,
    /// Fraction of non-zero cells (paper: 0.2).
    pub density: f64,
    /// Decomposition rank (paper: 10).
    pub rank: usize,
    /// Partitions per mode for 2PCP (paper: 2).
    pub parts: usize,
    /// HaTen2 ALS iterations (paper: 1).
    pub haten2_iterations: usize,
    /// Per-reducer memory cap for the HaTen2 baseline.
    pub haten2_memory_cap: Option<u64>,
    /// Phase-2 virtual-iteration budget for 2PCP.
    pub twopcp_virtual_iters: usize,
    /// Scratch directory.
    pub work_dir: PathBuf,
    /// Seed.
    pub seed: u64,
}

impl Table1Config {
    /// Laptop-scale defaults (see module docs).
    pub fn scaled(work_dir: PathBuf) -> Self {
        Table1Config {
            sides: vec![60, 120, 180],
            density: 0.2,
            rank: 10,
            parts: 2,
            haten2_iterations: 1,
            // ~8 MB/reducer at side 120, ~27 MB at side 180: the largest
            // size exceeds the cap, reproducing Table I's FAILS row.
            haten2_memory_cap: Some(16 << 20),
            twopcp_virtual_iters: 20,
            work_dir,
            seed: 42,
        }
    }

    /// Paper-scale settings (500/1000/1500; use only with hours of budget).
    pub fn full(work_dir: PathBuf) -> Self {
        Table1Config {
            sides: vec![500, 1000, 1500],
            // EC2 R3.xlarge had 30.5 GB per worker; the cap scales the
            // same way the harness cap does (≈ nnz · record bytes / R).
            haten2_memory_cap: Some(8 << 30),
            ..Table1Config::scaled(work_dir)
        }
    }
}

/// One measured row of Table I.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Cube side.
    pub side: usize,
    /// Non-zero count.
    pub nnz: u64,
    /// 2PCP wall time.
    pub twopcp_time: Duration,
    /// 2PCP exact fit.
    pub twopcp_fit: f64,
    /// 2PCP Phase-2 I/O statistics (swaps, stall, prefetch hits).
    pub twopcp_io: tpcp_storage::IoStats,
    /// HaTen2 wall time (None = FAILS).
    pub haten2_time: Option<Duration>,
    /// HaTen2 fit (None = FAILS).
    pub haten2_fit: Option<f64>,
}

/// Runs the sweep.
///
/// # Panics
/// Panics on configuration errors (the harness treats those as bugs).
pub fn run(cfg: &Table1Config) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for (i, &side) in cfg.sides.iter().enumerate() {
        let dims = [side, side, side];
        let x = dense_uniform(&dims, cfg.density, cfg.seed.wrapping_add(i as u64));
        let nnz = x.nnz() as u64;

        // ---- 2PCP ---------------------------------------------------------
        let t0 = Instant::now();
        // Table I compares the two-phase engine against the HaTen2
        // baseline on dense-uniform data — the compressed mode's
        // documented worst case; pin it off so a TPCP_COMPRESS=1
        // environment can't replace what it measures.
        let outcome = TwoPcp::new(
            TwoPcpConfig::new(cfg.rank)
                .compress_off()
                .parts(vec![cfg.parts])
                .max_virtual_iters(cfg.twopcp_virtual_iters)
                .tol(1e-2)
                .seed(cfg.seed)
                .work_dir(cfg.work_dir.join(format!("twopcp_{side}"))),
        )
        .decompose_dense(&x)
        .expect("2PCP run failed");
        let twopcp_time = t0.elapsed();

        // ---- HaTen2 baseline ------------------------------------------------
        let sparse = SparseTensor::from_dense(&x, 0.0);
        drop(x);
        let h_cfg = Haten2Config {
            rank: cfg.rank,
            iterations: cfg.haten2_iterations,
            reducer_memory_bytes: cfg.haten2_memory_cap,
            seed: cfg.seed,
            ..Haten2Config::new(cfg.work_dir.join(format!("haten2_{side}")))
        };
        let t1 = Instant::now();
        let (haten2_time, haten2_fit) = match haten2_cp(&sparse, &h_cfg) {
            Ok(report) => (Some(t1.elapsed()), Some(report.fit)),
            Err(e) if e.is_oom() => (None, None),
            Err(e) => panic!("HaTen2 baseline failed unexpectedly: {e}"),
        };

        rows.push(Table1Row {
            side,
            nnz,
            twopcp_time,
            twopcp_fit: outcome.fit,
            twopcp_io: outcome.phase2.io,
            haten2_time,
            haten2_fit,
        });
    }
    rows
}

/// Renders the paper-style table.
pub fn render(cfg: &Table1Config, rows: &[Table1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{0}x{0}x{0} ({1} nnz)", r.side, fmt_count(r.nnz)),
                fmt_duration(r.twopcp_time),
                format!("{:.4}", r.twopcp_fit),
                format!(
                    "{} sw / {:.1}ms / {} pf",
                    r.twopcp_io.fetches,
                    r.twopcp_io.stall_ms(),
                    r.twopcp_io.prefetch_hits
                ),
                r.haten2_time.map_or("FAILS".into(), fmt_duration),
                r.haten2_fit.map_or("FAILS".into(), |f| format!("{f:.4}")),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Table I — execution times on dense tensors (density {}, rank {}, {p}x{p}x{p} grid; HaTen2: {} iteration(s))\n",
        cfg.density,
        cfg.rank,
        cfg.haten2_iterations,
        p = cfg.parts,
    ));
    out.push_str(&render_table(
        &[
            "Tensor size",
            "2PCP",
            "2PCP fit",
            "P2 swaps/stall/prefetch",
            "HaTen2",
            "HaTen2 fit",
        ],
        &body,
    ));
    out
}

/// Renders the Figure 11 series (execution time vs non-zeros).
pub fn render_fig11(rows: &[Table1Row]) -> String {
    let mut out = String::from("Figure 11 — 2PCP execution time vs number of non-zero elements\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt_count(r.nnz),
                format!("{:.2}", r.twopcp_time.as_secs_f64()),
            ]
        })
        .collect();
    out.push_str(&render_table(&["# non-zeros", "2PCP seconds"], &body));
    // Linearity check: the paper's point is that 2PCP scales ~linearly.
    if rows.len() >= 2 {
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        let nnz_ratio = last.nnz as f64 / first.nnz.max(1) as f64;
        let time_ratio = last.twopcp_time.as_secs_f64() / first.twopcp_time.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "nnz grew {nnz_ratio:.1}x, time grew {time_ratio:.1}x (linear scaling => similar ratios)\n",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_expected_shape() {
        let dir = crate::args::scratch_dir("table1_test");
        let cfg = Table1Config {
            sides: vec![12, 18],
            twopcp_virtual_iters: 4,
            // Cap chosen so the second size fails: nnz(18³)·0.2 ≈ 1166
            // records ≈ 110 KB of shuffle vs nnz(12³)·0.2 ≈ 345.
            haten2_memory_cap: Some(20 << 10),
            ..Table1Config::scaled(dir.clone())
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].haten2_time.is_some(), "small size must pass");
        assert!(rows[1].haten2_time.is_none(), "large size must FAIL");
        assert!(rows[1].nnz > rows[0].nnz * 2);
        let table = render(&cfg, &rows);
        assert!(table.contains("FAILS"));
        let fig = render_fig11(&rows);
        assert!(fig.contains("2PCP seconds"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
