//! Plain-text table rendering for the experiment reports.

use std::time::Duration;

/// Formats a duration compactly (`1.23s`, `456ms`, `2m03s`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        let m = (secs / 60.0).floor() as u64;
        format!("{m}m{:04.1}s", secs - 60.0 * m as f64)
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{:.0}ms", secs * 1e3)
    }
}

/// Formats a non-zero count the way the paper does (`0.025B`, `43.2K`).
pub fn fmt_count(n: u64) -> String {
    let x = n as f64;
    if x >= 1e9 {
        format!("{:.3}B", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}K", x / 1e3)
    } else {
        format!("{n}")
    }
}

/// Formats a byte count (`1.2 GB`, `34 MB`, `512 B`).
pub fn fmt_bytes(n: u64) -> String {
    let x = n as f64;
    if x >= 1e9 {
        format!("{:.2} GB", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1} MB", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1} KB", x / 1e3)
    } else {
        format!("{n} B")
    }
}

/// Renders an aligned plain-text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (c, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations() {
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.34)), "2.3s");
        assert_eq!(fmt_duration(Duration::from_secs(125)), "2m05.0s");
    }

    #[test]
    fn counts() {
        assert_eq!(fmt_count(42), "42");
        assert_eq!(fmt_count(43_200), "43.2K");
        assert_eq!(fmt_count(25_000_000), "25.00M");
        assert_eq!(fmt_count(700_000_000), "700.00M");
        assert_eq!(fmt_count(2_500_000_000), "2.500B");
    }

    #[test]
    fn bytes() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2_048), "2.0 KB");
        assert_eq!(fmt_bytes(6_000_000_000), "6.00 GB");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        assert!(t.contains("| name      | value |"));
        assert!(t.contains("| long-name | 2     |"));
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{t}"
        );
    }
}
