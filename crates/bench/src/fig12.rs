//! Figure 12 (a–c): per-virtual-iteration data swaps.
//!
//! Paper setting (Table III): grids 2³/4³/8³ × schedules MC/FO/ZO/HO ×
//! replacement LRU/MRU/FOR × buffer fractions 1/3, 1/2, 2/3. The paper
//! notes the counts are data-independent, so this experiment is replayed
//! exactly (not scaled) through [`twopcp::simulate_swaps`].

use crate::fmt::{fmt_bytes, render_table};
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{simulate_swaps, unit_bytes, SwapSimConfig};

/// One cell of Figure 12.
#[derive(Clone, Debug)]
pub struct Fig12Cell {
    /// Partitions per mode.
    pub parts: usize,
    /// Update schedule.
    pub schedule: ScheduleKind,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Buffer fraction.
    pub fraction: f64,
    /// Steady-state swaps per virtual iteration.
    pub swaps: f64,
}

/// Runs the full sweep. `virtual_iters` bounds the simulation length per
/// cell (it must comfortably exceed the warmup cycle; 300 is plenty for
/// the paper's grids).
pub fn run(virtual_iters: usize) -> Vec<Fig12Cell> {
    let mut cells = Vec::new();
    for &fraction in &[1.0 / 3.0, 0.5, 2.0 / 3.0] {
        for &parts in &[2usize, 4, 8] {
            for schedule in ScheduleKind::ALL {
                for policy in PolicyKind::ALL {
                    let report = simulate_swaps(&SwapSimConfig {
                        parts: vec![parts; 3],
                        schedule,
                        policy,
                        buffer_fraction: fraction,
                        virtual_iters,
                    })
                    .expect("swap simulation failed");
                    cells.push(Fig12Cell {
                        parts,
                        schedule,
                        policy,
                        fraction,
                        swaps: report.steady_swaps,
                    });
                }
            }
        }
    }
    cells
}

/// Renders the three paper sub-figures as tables (one per buffer size).
pub fn render(cells: &[Fig12Cell]) -> String {
    let mut out = String::new();
    for (label, fraction) in [
        ("(a) buffer = 1/3 of total requirement", 1.0 / 3.0),
        ("(b) buffer = 1/2 of total requirement", 0.5),
        ("(c) buffer = 2/3 of total requirement", 2.0 / 3.0),
    ] {
        out.push_str(&format!("Figure 12 {label} — per-iteration data swaps\n"));
        let mut body = Vec::new();
        for &parts in &[2usize, 4, 8] {
            for schedule in ScheduleKind::ALL {
                let mut row = vec![format!("{0}x{0}x{0}", parts), schedule.abbrev().into()];
                for policy in PolicyKind::ALL {
                    let cell = cells
                        .iter()
                        .find(|c| {
                            c.parts == parts
                                && c.schedule == schedule
                                && c.policy == policy
                                && (c.fraction - fraction).abs() < 1e-9
                        })
                        .expect("cell present");
                    row.push(format!("{:.2}", cell.swaps));
                }
                body.push(row);
            }
        }
        out.push_str(&render_table(
            &["Grid", "Schedule", "LRU", "MRU", "FOR"],
            &body,
        ));
        out.push('\n');
    }
    out
}

/// The §VIII-C1 worked example: bytes exchanged per iteration for a
/// 100K×100K×100K tensor, 8³ grid, rank 100, comparing the best
/// mode-centric strategy against HO+FOR.
pub fn render_bytes_example(cells: &[Fig12Cell]) -> String {
    let dims = [100_000usize; 3];
    let parts = [8usize; 3];
    let rank = 100;
    let unit = unit_bytes(&dims, &parts, rank, 0) as f64;

    let pick = |schedule: ScheduleKind, policy: PolicyKind, fraction: f64| -> f64 {
        cells
            .iter()
            .find(|c| {
                c.parts == 8
                    && c.schedule == schedule
                    && c.policy == policy
                    && (c.fraction - fraction).abs() < 1e-9
            })
            .map_or(f64::NAN, |c| c.swaps)
    };

    let mc_mru = pick(ScheduleKind::ModeCentric, PolicyKind::Mru, 2.0 / 3.0);
    let ho_for = pick(ScheduleKind::HilbertOrder, PolicyKind::Forward, 2.0 / 3.0);
    let mut out =
        String::from("Worked example (paper §VIII-C1): 100K^3 tensor, 8x8x8 grid, rank 100\n");
    out.push_str(&format!("  one data unit = {}\n", fmt_bytes(unit as u64)));
    out.push_str(&format!(
        "  MC + MRU : {mc_mru:.2} swaps/iter = {} per iteration (paper: ~6 GB at 8.32 swaps)\n",
        fmt_bytes((mc_mru * unit) as u64)
    ));
    out.push_str(&format!(
        "  HO + FOR : {ho_for:.2} swaps/iter = {} per iteration (paper: ~160 MB at 0.22 swaps)\n",
        fmt_bytes((ho_for * unit) as u64)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_cells_and_reproduces_ordering() {
        let cells = run(220);
        assert_eq!(cells.len(), 3 * 3 * 4 * 3);
        // Headline orderings of the paper at 1/3 buffer, 8³ grid:
        let get = |s: ScheduleKind, p: PolicyKind| {
            cells
                .iter()
                .find(|c| {
                    c.parts == 8
                        && c.schedule == s
                        && c.policy == p
                        && (c.fraction - 1.0 / 3.0).abs() < 1e-9
                })
                .unwrap()
                .swaps
        };
        let mc_lru = get(ScheduleKind::ModeCentric, PolicyKind::Lru);
        let ho_for = get(ScheduleKind::HilbertOrder, PolicyKind::Forward);
        assert!(mc_lru > 23.0, "MC+LRU {mc_lru}");
        assert!(ho_for < 1.5, "HO+FOR {ho_for}");
        let rendered = render(&cells);
        assert!(rendered.contains("(a) buffer = 1/3"));
        assert!(rendered.contains("8x8x8"));
    }

    #[test]
    fn bytes_example_matches_paper_magnitudes() {
        let cells = run(220);
        let text = render_bytes_example(&cells);
        assert!(text.contains("one data unit = 650.0 MB"), "{text}");
    }
}
