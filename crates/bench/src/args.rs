//! Minimal command-line flag handling shared by the experiment binaries.

/// `true` when `--name` is present in the process arguments.
pub fn flag(name: &str) -> bool {
    let needle = format!("--{name}");
    std::env::args().any(|a| a == needle)
}

/// The value following `--name`, when present (`--name value`).
pub fn value(name: &str) -> Option<String> {
    let needle = format!("--{name}");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == needle {
            return args.next();
        }
    }
    None
}

/// Parsed value of `--name`, falling back to `default`.
pub fn value_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A fresh scratch directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tpcp_bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
