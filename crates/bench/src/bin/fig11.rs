//! Regenerates Figure 11 (2PCP execution time vs non-zero count).
//!
//! Usage: `cargo run -p tpcp-bench --release --bin fig11 [--full]`

use tpcp_bench::{args, table1};

fn main() {
    let dir = args::scratch_dir("fig11");
    let cfg = if args::flag("full") {
        table1::Table1Config::full(dir.clone())
    } else {
        table1::Table1Config::scaled(dir.clone())
    };
    eprintln!(
        "running Figure 11 sweep (Table I data): sides {:?}…",
        cfg.sides
    );
    let rows = table1::run(&cfg);
    println!("{}", table1::render_fig11(&rows));
    let _ = std::fs::remove_dir_all(&dir);
}
