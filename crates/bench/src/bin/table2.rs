//! Regenerates Table II (Naive CP vs 2PCP with LRU/FOR replacement).
//!
//! Usage: `cargo run -p tpcp-bench --release --bin table2 [--full]`

use tpcp_bench::{args, table2};

fn main() {
    let dir = args::scratch_dir("table2");
    let cfg = if args::flag("full") {
        table2::Table2Config::full(dir.clone())
    } else {
        table2::Table2Config::scaled(dir.clone())
    };
    eprintln!(
        "running Table II: {0}^3 density {1} rank {2} (naive CP + {3} partitionings x 2 policies)…",
        cfg.side,
        cfg.density,
        cfg.rank,
        cfg.parts.len()
    );
    let result = table2::run(&cfg);
    println!("{}", table2::render(&cfg, &result));
    let _ = std::fs::remove_dir_all(&dir);
}
