//! Regenerates Figure 13 (relative accuracy of block-centric schedules).
//!
//! Usage: `cargo run -p tpcp-bench --release --bin fig13 [--full] [--rank N]`

use tpcp_bench::{args, fig13};

fn main() {
    let mut cfg = if args::flag("full") {
        fig13::Fig13Config::full()
    } else {
        fig13::Fig13Config::scaled()
    };
    cfg.rank = args::value_or("rank", cfg.rank);
    eprintln!(
        "running Figure 13: 4 datasets x grids {:?} x budgets {:?} x 4 schedules (rank {})…",
        cfg.grids, cfg.budgets, cfg.rank
    );
    let cells = fig13::run(&cfg);
    println!("{}", fig13::render(&cfg, &cells));
}
