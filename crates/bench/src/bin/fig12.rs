//! Regenerates Figure 12 (per-iteration data swaps) and the §VIII-C1
//! bytes-per-iteration worked example.
//!
//! Usage: `cargo run -p tpcp-bench --release --bin fig12 [--iters N] [--bytes-example]`

use tpcp_bench::{args, fig12};

fn main() {
    let iters = args::value_or("iters", 300usize);
    let cells = fig12::run(iters);
    println!("{}", fig12::render(&cells));
    if args::flag("bytes-example") {
        println!("{}", fig12::render_bytes_example(&cells));
    }
}
