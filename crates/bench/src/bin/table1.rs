//! Regenerates Table I (2PCP vs HaTen2 execution times on dense tensors).
//!
//! Usage: `cargo run -p tpcp-bench --release --bin table1 [--full]`

use tpcp_bench::{args, table1};

fn main() {
    let dir = args::scratch_dir("table1");
    let cfg = if args::flag("full") {
        table1::Table1Config::full(dir.clone())
    } else {
        table1::Table1Config::scaled(dir.clone())
    };
    eprintln!(
        "running Table I sweep: sides {:?} (this runs both systems per size)…",
        cfg.sides
    );
    let rows = table1::run(&cfg);
    println!("{}", table1::render(&cfg, &rows));
    let _ = std::fs::remove_dir_all(&dir);
}
