//! Table II: Naive CP vs 2PCP (LRU vs FOR) on a high-density tensor.
//!
//! Paper setting (weak configuration, 8 GB RAM): 1000³ dense tensor of
//! density 0.49, rank 100; 2PCP on TensorDB with Z-order scheduling,
//! comparing LRU against forward-looking replacement at 2×2×2 and 4×4×4
//! partitionings; "Naive CP" (unpartitioned TensorDB CP-ALS) exceeds
//! 12 hours.
//!
//! Default harness setting: side 96 (≈1130× fewer cells), density 0.49,
//! rank 16, same grids/schedule/policies, on-disk unit store with a 1/2
//! buffer so replacement policy differences show up in wall time as well
//! as in swap counts. `--full` restores side 1000 / rank 100.

use crate::fmt::{fmt_bytes, fmt_duration, render_table};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tpcp_datasets::dense_uniform;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use tpcp_tensor::DenseTensor;
use twopcp::{naive_cp_out_of_core, KernelKind, NaiveOocOptions, TwoPcp, TwoPcpConfig};

/// Configuration of the Table II experiment.
#[derive(Clone, Debug)]
pub struct Table2Config {
    /// Cube side (paper: 1000).
    pub side: usize,
    /// Density (paper: 0.49).
    pub density: f64,
    /// Rank (paper: 100).
    pub rank: usize,
    /// Partitionings to compare (paper: 2 and 4 per mode).
    pub parts: Vec<usize>,
    /// Buffer fraction for Phase 2.
    pub buffer_fraction: f64,
    /// Phase-2 budget (the paper ran "until convergence").
    pub max_virtual_iters: usize,
    /// Naive-CP iteration cap.
    pub naive_max_iters: usize,
    /// Scratch directory.
    pub work_dir: PathBuf,
    /// Seed.
    pub seed: u64,
}

impl Table2Config {
    /// Laptop-scale defaults (see module docs).
    pub fn scaled(work_dir: PathBuf) -> Self {
        Table2Config {
            side: 96,
            density: 0.49,
            rank: 16,
            parts: vec![2, 4],
            buffer_fraction: 0.5,
            max_virtual_iters: 30,
            naive_max_iters: 20,
            work_dir,
            seed: 7,
        }
    }

    /// Paper-scale settings.
    pub fn full(work_dir: PathBuf) -> Self {
        Table2Config {
            side: 1000,
            rank: 100,
            ..Table2Config::scaled(work_dir)
        }
    }
}

/// Timings of one partitioning row.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Partitions per mode.
    pub parts: usize,
    /// Mean Phase-1 time per block (the paper's "BD (per block)").
    pub phase1_per_block: Duration,
    /// Phase-2 time under LRU.
    pub phase2_lru: Duration,
    /// Phase-2 time under forward-looking replacement.
    pub phase2_for: Duration,
    /// Total under LRU (Phase 1 + Phase 2).
    pub total_lru: Duration,
    /// Total under FOR.
    pub total_for: Duration,
    /// Phase-2 swap counts (LRU, FOR) — the mechanism behind the gap.
    pub swaps: (u64, u64),
    /// Phase-2 disk traffic under FOR (bytes read + written) — compare
    /// with the naive baseline's full-tensor scans.
    pub phase2_bytes_for: u64,
    /// Phase-2 critical-path read stall in ms (LRU, FOR) — what the
    /// prefetch pipeline removes.
    pub stall_ms: (f64, f64),
    /// Phase-2 swaps served by the asynchronous prefetcher (LRU, FOR).
    pub prefetch_hits: (u64, u64),
    /// `Q`-Hadamard fold hotness under FOR (ROADMAP item 3: is it ever
    /// worth a phase-2 dimension tree?).
    pub q_hadamard_for: twopcp::QHadamardStats,
}

/// Full result: the Naive CP baseline plus one row per partitioning.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// Wall time of the out-of-core naive CP baseline (the TensorDB
    /// analogue the paper compares against).
    pub naive_time: Duration,
    /// Fit of the naive baseline.
    pub naive_fit: f64,
    /// Tensor bytes the naive baseline re-read from disk (N full tensor
    /// scans per iteration — the quantity that balloons past 12 hours at
    /// paper scale).
    pub naive_bytes_read: u64,
    /// Per-partitioning rows.
    pub rows: Vec<Table2Row>,
}

fn run_variant(
    x: &DenseTensor,
    cfg: &Table2Config,
    parts: usize,
    policy: PolicyKind,
) -> (Duration, Duration, twopcp::RefineStats, f64) {
    let outcome = TwoPcp::new(
        // Table II reproduces the paper's two-phase experiment (phase
        // timings, swap counts); pin the compressed mode off so a
        // TPCP_COMPRESS=1 environment can't replace what it measures.
        TwoPcpConfig::new(cfg.rank)
            .compress_off()
            .parts(vec![parts])
            .schedule(ScheduleKind::ZOrder)
            .policy(policy)
            .buffer_fraction(cfg.buffer_fraction)
            .max_virtual_iters(cfg.max_virtual_iters)
            .tol(1e-2)
            .seed(cfg.seed)
            .work_dir(
                cfg.work_dir
                    .join(format!("t2_p{parts}_{}", policy.abbrev())),
            ),
    )
    .decompose_dense(x)
    .expect("2PCP run failed");
    (
        outcome.phase1_time,
        outcome.phase2_time,
        outcome.phase2,
        outcome.fit,
    )
}

/// Runs the experiment.
///
/// # Panics
/// Panics on configuration errors.
pub fn run(cfg: &Table2Config) -> Table2Result {
    let dims = [cfg.side, cfg.side, cfg.side];
    let x = dense_uniform(&dims, cfg.density, cfg.seed);

    // Naive CP: out-of-core ALS (TensorDB-style) — the tensor is chunked
    // to disk and every iteration re-reads it once per mode.
    let t0 = Instant::now();
    let naive = naive_cp_out_of_core(
        &x,
        &NaiveOocOptions {
            rank: cfg.rank,
            max_iters: cfg.naive_max_iters,
            tol: 1e-2,
            seed: cfg.seed,
            ..NaiveOocOptions::new(cfg.work_dir.join("naive"))
        },
    )
    .expect("naive out-of-core ALS failed");
    let naive_time = t0.elapsed();

    let mut rows = Vec::new();
    for &parts in &cfg.parts {
        let (p1_lru, p2_lru, st_lru, _) = run_variant(&x, cfg, parts, PolicyKind::Lru);
        let (_, p2_for, st_for, _) = run_variant(&x, cfg, parts, PolicyKind::Forward);
        let (io_lru, io_for) = (&st_lru.io, &st_for.io);
        let blocks = parts.pow(3) as u32;
        rows.push(Table2Row {
            parts,
            phase1_per_block: p1_lru / blocks,
            phase2_lru: p2_lru,
            phase2_for: p2_for,
            total_lru: p1_lru + p2_lru,
            total_for: p1_lru + p2_for,
            swaps: (io_lru.fetches, io_for.fetches),
            phase2_bytes_for: io_for.bytes_read + io_for.bytes_written,
            stall_ms: (io_lru.stall_ms(), io_for.stall_ms()),
            prefetch_hits: (io_lru.prefetch_hits, io_for.prefetch_hits),
            q_hadamard_for: st_for.q_hadamard,
        });
    }
    Table2Result {
        naive_time,
        naive_fit: naive.fit,
        naive_bytes_read: naive.bytes_read,
        rows,
    }
}

/// Renders the paper-style table.
pub fn render(cfg: &Table2Config, result: &Table2Result) -> String {
    let mut body = vec![vec![
        "Naive CP (OOC)".to_string(),
        fmt_duration(result.naive_time),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_bytes(result.naive_bytes_read),
        "-".into(),
        "-".into(),
    ]];
    for r in &result.rows {
        body.push(vec![
            format!("{0}x{0}x{0}", r.parts),
            format!("{} (per block)", fmt_duration(r.phase1_per_block)),
            fmt_duration(r.phase2_lru),
            fmt_duration(r.phase2_for),
            fmt_duration(r.total_lru),
            fmt_duration(r.total_for),
            format!("{} / {}", r.swaps.0, r.swaps.1),
            fmt_bytes(r.phase2_bytes_for),
            format!("{:.1} / {:.1}", r.stall_ms.0, r.stall_ms.1),
            format!("{} / {}", r.prefetch_hits.0, r.prefetch_hits.1),
        ]);
    }
    let mut out = format!(
        "Table II — execution times ({side}^3, density {dens}, rank {rank}, ZO schedule, buffer {buf:.2}, {kern} kernels, dimtree {dt})\n",
        side = cfg.side,
        dens = cfg.density,
        rank = cfg.rank,
        buf = cfg.buffer_fraction,
        // The runs above dispatch through the same Auto resolution /
        // TPCP_DIMTREE default, so these are the backend and MTTKRP path
        // every Phase-1/Phase-2 row actually ran.
        kern = KernelKind::auto().resolved().label(),
        dt = if tpcp_cp::dimtree_auto() { "on" } else { "off" },
    );
    out.push_str(&render_table(
        &[
            "# Part.",
            "Phase I BD",
            "Phase II LRU",
            "Phase II FOR",
            "Total LRU",
            "Total FOR",
            "Swaps LRU/FOR",
            "Disk traffic",
            "Stall ms LRU/FOR",
            "PF hits LRU/FOR",
        ],
        &body,
    ));
    out.push_str(
        "Disk traffic: naive = full-tensor re-reads (N per iteration);          2PCP = Phase-2 factor-unit traffic only.
",
    );
    out.push_str(
        "Stall = wall time blocked on Phase-2 reads; PF hits = swaps served by the async prefetch pipeline.
",
    );
    // ROADMAP item 3 asks whether the refine loop's Q-Hadamard fold is
    // ever hot enough to warrant a phase-2 dimension tree; answer it in
    // every report.
    for r in &result.rows {
        let share = 100.0 * r.q_hadamard_for.ms() / r.phase2_for.as_secs_f64().max(1e-9) / 1000.0;
        out.push_str(&format!(
            "Q-Hadamard fold ({0}x{0}x{0}, FOR): {1} calls, {2:.2} ms = {3:.3}% of Phase II.\n",
            r.parts,
            r.q_hadamard_for.calls,
            r.q_hadamard_for.ms(),
            share,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table2_has_for_no_worse_than_lru_swaps() {
        let dir = crate::args::scratch_dir("table2_test");
        let cfg = Table2Config {
            side: 16,
            rank: 4,
            parts: vec![2],
            max_virtual_iters: 8,
            naive_max_iters: 4,
            ..Table2Config::scaled(dir.clone())
        };
        let result = run(&cfg);
        assert_eq!(result.rows.len(), 1);
        let row = &result.rows[0];
        assert!(
            row.swaps.1 <= row.swaps.0,
            "FOR swaps {} must not exceed LRU swaps {}",
            row.swaps.1,
            row.swaps.0
        );
        let table = render(&cfg, &result);
        assert!(table.contains("Naive CP (OOC)"));
        assert!(table.contains("2x2x2"));
        assert!(
            table.contains(" kernels,"),
            "title must attribute the active kernel backend"
        );
        assert!(
            table.contains(", dimtree on)") || table.contains(", dimtree off)"),
            "title must attribute the active MTTKRP path"
        );
        assert!(
            table.contains("Q-Hadamard fold"),
            "report must answer the q_hadamard hotness question"
        );
        assert!(row.q_hadamard_for.calls > 0, "hotness counter never ticked");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
