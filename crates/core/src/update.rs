//! The refinement update rule (paper eq. 3).
//!
//! For mode `i`, partition `kᵢ`:
//!
//! ```text
//! T(i)(kᵢ) = Σ_{l: lᵢ=kᵢ}  U(i)_l · ⊛_{h≠i} P(h)_l
//! S(i)(kᵢ) = Σ_{l: lᵢ=kᵢ}  ⊛_{h≠i} Q(h)_l
//! A(i)(kᵢ) ← T(i)(kᵢ) · S(i)(kᵢ)⁻¹
//! ```
//!
//! followed by the in-place refresh of `P(i)_l` (for every block `l` in the
//! slab) and `Q(i)(kᵢ)` — the paper's Observation #2, which is what makes
//! the block-centric scheduling of Algorithm 2 possible without extra I/O.

use crate::pq::{PqCache, QHadamardScratch};
use crate::{Result, TwoPcpError};
use tpcp_linalg::{solve, KernelKind, Mat};
use tpcp_par::ParConfig;
use tpcp_partition::Grid;
use tpcp_schedule::UnitId;
use tpcp_storage::UnitData;

/// Computes the updated sub-factor `A(i)(kᵢ) = T·S⁻¹` from the unit's slab
/// sub-factors and the `P`/`Q` caches, with the `U·(⊛P)` products on the
/// shared thread budget. Pure function — the caller commits the result via
/// [`commit_sub_factor_update`].
///
/// `scratch` carries the `Q`-Hadamard fold prefixes across the slab's
/// blocks (and across units, when the caller keeps it alive): it is
/// cleared on entry, so any `Q` refresh between calls is safe, and the
/// result is bitwise-identical to folding from scratch per block.
///
/// # Errors
/// Propagates linear-algebra failures (singular `S` beyond ridge repair).
pub fn compute_sub_factor_update(
    grid: &Grid,
    unit: &UnitData,
    pq: &PqCache,
    ridge: f64,
    par: &ParConfig,
    kernel: KernelKind,
    scratch: &mut QHadamardScratch,
) -> Result<Mat> {
    let mode = usize::from(unit.unit.mode);
    let rank = pq.rank();
    let rows = unit.factor.rows();

    // `Q` entries may have been refreshed since the previous unit's update.
    scratch.clear();
    let mut t = Mat::zeros(rows, rank);
    let mut s = Mat::zeros(rank, rank);
    for (block_u64, u_mat) in &unit.sub_factors {
        let block = *block_u64 as usize;
        // T += U(i)_l · ⊛_{h≠i} P(h)_l   (skip empty blocks: U = 0).
        let p_had = pq.p_hadamard_excluding(block, mode)?;
        if u_mat.as_slice().iter().any(|&v| v != 0.0) {
            let contrib = u_mat
                .matmul_kernel(&p_had, par, kernel)
                .map_err(TwoPcpError::from)?;
            t.add_assign(&contrib).map_err(TwoPcpError::from)?;
        }
        // S += ⊛_{h≠i} Q(h)_l (fold prefixes shared between the slab's
        // consecutive blocks).
        let coords = grid.block_coords(block);
        let q_had = pq.q_hadamard_excluding_cached(grid, &coords, mode, scratch)?;
        s.add_assign(&q_had).map_err(TwoPcpError::from)?;
    }
    solve::solve_gram_system(&t, &s, ridge).map_err(TwoPcpError::from)
}

/// Commits `a_new` as the unit's factor and refreshes the caches in place:
/// `P(i)_l ← U(i)_lᵀ · a_new` for every block `l` in the slab, and
/// `Q(i)(kᵢ) ← a_newᵀ · a_new`, both on the shared thread budget.
///
/// # Errors
/// Propagates shape mismatches (impossible for consistent inputs).
pub fn commit_sub_factor_update(
    grid: &Grid,
    unit: &mut UnitData,
    pq: &mut PqCache,
    a_new: Mat,
    par: &ParConfig,
    kernel: KernelKind,
) -> Result<()> {
    let mode = usize::from(unit.unit.mode);
    for (block_u64, u_mat) in &unit.sub_factors {
        let p_new = u_mat
            .t_matmul_kernel(&a_new, par, kernel)
            .map_err(TwoPcpError::from)?;
        pq.set_p(*block_u64 as usize, mode, p_new);
    }
    pq.set_q(
        grid,
        UnitId::new(mode, unit.unit.part as usize),
        a_new.gram_kernel(par, kernel),
    );
    unit.factor = a_new;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_cp::CpModel;
    use tpcp_tensor::random_factor;

    /// Builds a consistent 1-partition-per-mode scenario where the update
    /// rule must reproduce plain ALS on the reconstructed tensor.
    #[test]
    fn single_block_update_matches_direct_least_squares() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let dims = [6usize, 5, 4];
        let f = 3;
        let grid = Grid::new(&dims, &[1, 1, 1]);

        // Block model U (the Phase-1 output) and current global guess A.
        let u: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        let a: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();

        // Prime the caches.
        let mut pq = PqCache::new(&grid, f);
        for h in 0..3 {
            pq.set_p(0, h, u[h].t_matmul(&a[h]).unwrap());
            pq.set_q(&grid, UnitId::new(h, 0), a[h].gram());
        }

        // Unit for mode 0.
        let unit = UnitData {
            unit: UnitId::new(0, 0),
            factor: a[0].clone(),
            sub_factors: vec![(0, u[0].clone())],
        };
        let a0_new = compute_sub_factor_update(
            &grid,
            &unit,
            &pq,
            1e-12,
            &ParConfig::auto(),
            KernelKind::Auto,
            &mut QHadamardScratch::new(),
        )
        .unwrap();

        // Reference: ALS update of mode 0 on the reconstruction of U, with
        // B and C fixed to the current A estimates:
        //   A₀ = X̂_(0)·KR(A₁,A₂)·(A₁ᵀA₁ ⊛ A₂ᵀA₂)⁻¹.
        let x_hat = CpModel::new(vec![1.0; f], u.clone())
            .unwrap()
            .reconstruct_dense();
        let refs: Vec<&Mat> = a.iter().collect();
        let m = tpcp_cp::mttkrp_dense(&x_hat, &refs, 0).unwrap();
        let s = a[1].gram().hadamard(&a[2].gram()).unwrap();
        let expect = solve::solve_gram_system(&m, &s, 1e-12).unwrap();

        assert!(
            a0_new.max_abs_diff(&expect).unwrap() < 1e-6,
            "block update rule must equal ALS on the reconstructed tensor"
        );
    }

    #[test]
    fn commit_refreshes_caches_and_factor() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let grid = Grid::new(&[4, 4], &[2, 2]);
        let f = 2;
        let mut pq = PqCache::new(&grid, f);
        let u_block0 = random_factor(2, f, &mut rng);
        let u_block1 = random_factor(2, f, &mut rng);
        let mut unit = UnitData {
            unit: UnitId::new(0, 0),
            // Slab of <0,0> in a 2x2 grid: blocks (0,0)=0 and (0,1)=1.
            factor: random_factor(2, f, &mut rng),
            sub_factors: vec![(0, u_block0.clone()), (1, u_block1.clone())],
        };
        let a_new = random_factor(2, f, &mut rng);
        commit_sub_factor_update(
            &grid,
            &mut unit,
            &mut pq,
            a_new.clone(),
            &ParConfig::auto(),
            KernelKind::Auto,
        )
        .unwrap();
        assert_eq!(unit.factor, a_new);
        assert_eq!(pq.p(0, 0), &u_block0.t_matmul(&a_new).unwrap());
        assert_eq!(pq.p(1, 0), &u_block1.t_matmul(&a_new).unwrap());
        assert_eq!(pq.q(&grid, UnitId::new(0, 0)), &a_new.gram());
        // Unrelated cache entries untouched.
        assert!(pq.p(2, 0).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_blocks_contribute_zero_to_t() {
        // A slab whose only block is empty (zero U): T = 0 ⇒ A_new = 0.
        let grid = Grid::new(&[4, 4], &[1, 1]);
        let f = 2;
        let mut pq = PqCache::new(&grid, f);
        // Q must be nonsingular for the solve; set to identity.
        pq.set_q(&grid, UnitId::new(0, 0), Mat::identity(f));
        pq.set_q(&grid, UnitId::new(1, 0), Mat::identity(f));
        let unit = UnitData {
            unit: UnitId::new(0, 0),
            factor: Mat::filled(4, f, 1.0),
            sub_factors: vec![(0, Mat::zeros(4, f))],
        };
        let a_new = compute_sub_factor_update(
            &grid,
            &unit,
            &pq,
            1e-9,
            &ParConfig::serial(),
            KernelKind::Auto,
            &mut QHadamardScratch::new(),
        )
        .unwrap();
        assert!(a_new.as_slice().iter().all(|&v| v.abs() < 1e-12));
    }
}
