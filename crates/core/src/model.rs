//! The saved-model artifact: a decomposition promoted from the driver's
//! loose `(factors, λ, fit)` outputs into a self-describing, queryable
//! on-disk container.
//!
//! # Container format (`.2pcpm`)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"2PCPMODL"
//! 8       4     container version (u32 LE, currently 1)
//! 12      4     metadata length `m` (u32 LE)
//! 16      m     metadata block (layout below)
//! 16+m    8     FNV-1a 64 checksum of bytes [0, 16+m)
//! …       pad   zero padding to the next 8-byte boundary
//! then, for each mode h = 0 .. order:
//!         8     page length (u64 LE)
//!         …     codec-v2 page of `UnitData { unit: (h, 0), factor: A⁽ʰ⁾ }`
//!         pad   zero padding to the next 8-byte boundary
//! ```
//!
//! Metadata block (all little-endian):
//!
//! ```text
//! u16 name_len, name (UTF-8)
//! u32 rank
//! u32 order
//! u64 × order   dims
//! u64 seed
//! f64 fit
//! u16 sched_len, schedule abbreviation (UTF-8, e.g. "HO")
//! u32 parts_len, u64 × parts_len   phase-1 grid provenance
//! -- version 2 only (compression provenance) --
//! u32 mlrank_len, u64 × mlrank_len   requested per-mode rank caps
//! f64 energy                          retained ‖X‖² fraction
//! u32 core_len, u64 × core_len        compressed core shape
//! -- end version 2 --
//! f64 × rank    component weights λ
//! ```
//!
//! Version 1 containers have no compression section; [`Model::to_bytes`]
//! still writes version 1 whenever the model carries no compression
//! provenance, so artifacts from the default pipeline are byte-for-byte
//! what they were before version 2 existed, and old files keep loading.
//!
//! Factor matrices ride as ordinary codec-v2 pages — the same
//! checksummed, bulk-copy format the unit stores swap — so the reader is
//! `tpcp_storage::codec::decode` over an `Mmap` (buffered fallback when
//! `TPCP_MMAP` is off), and a corrupted factor fails the same way a
//! corrupted swap page does.
//!
//! # Residency: owned vs shared-mmap
//!
//! A model can be resident in two ways ([`Model::residency`]):
//!
//! * [`Residency::Owned`] — factors decoded into owned matrices
//!   ([`Model::from_bytes`], [`Model::load_with`] buffered);
//! * [`Residency::Mapped`] — [`Model::load_shared`] validates the whole
//!   container once (checksums, shapes) and then reads the factor slabs
//!   *in place* from one shared, page-aligned memory map. Queries borrow
//!   `&[f64]` views straight out of the map — zero copies per query —
//!   and cloning the model clones an `Arc` of the map, so a serving
//!   registry holds exactly one mapping per model version. Because the
//!   map is `MAP_SHARED` over an immutable file that writers replace via
//!   atomic rename ([`Model::save`]), a hot swap never mutates pages
//!   under a live reader: sessions pinned to the old version keep the old
//!   inode's mapping alive until the last `Arc` drops.
//!
//! Both residencies answer every query bitwise-identically: the slab
//! bytes are the same little-endian `f64`s either way, and all heavy
//! products go through the shared kernel seam
//! ([`tpcp_linalg::matmul_t_slices`]) with its accumulation-order
//! contract.
//!
//! Besides persistence, [`Model`] is the shared query surface: the
//! serving daemon (`tpcp-serve`) and in-process verification both answer
//! entry/fiber/slice/top-k/similarity questions through these methods,
//! which is what makes served answers bitwise-comparable to local ones.
//! The batched variants ([`Model::entries`], [`Model::fibers`],
//! [`Model::rows`]) evaluate many queries in one pass per factor matrix
//! (gather rows → one matmul-shaped product instead of N dot loops) and
//! are guaranteed bitwise-identical to looping the single-query methods.

use crate::{config::TwoPcpConfig, driver::TwoPcpOutcome, Result, TwoPcpError};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use tpcp_compress::CompressProvenance;
use tpcp_cp::CpModel;
use tpcp_linalg::{gather_rows, matmul_t_slices_auto, Mat};
use tpcp_schedule::UnitId;
use tpcp_storage::{codec, mmap_auto, UnitData};

/// Magic bytes opening a model container.
pub const MODEL_MAGIC: &[u8; 8] = b"2PCPMODL";
/// Newest container format version. [`Model::save`] writes version 2 only
/// when the model carries compression provenance; plain models stay
/// version 1 (bitwise identical to pre-v2 artifacts). The reader accepts
/// both.
pub const MODEL_VERSION: u32 = 2;
/// Conventional file extension for saved models.
pub const MODEL_EXT: &str = "2pcpm";

/// Hard ceilings rejected at load time before any allocation is sized
/// from untrusted header fields.
const MAX_META_LEN: u32 = 1 << 20;
const MAX_ORDER: u32 = 64;
const MAX_RANK: u32 = 1 << 20;

/// Descriptive metadata stored alongside the factors: everything needed
/// to answer "what is this model?" without decoding a page.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelMeta {
    /// Human-readable model name (the registry key when served).
    pub name: String,
    /// Decomposition rank `F`.
    pub rank: usize,
    /// Tensor shape `I₁ … I_N`.
    pub dims: Vec<usize>,
    /// RNG seed the decomposition ran with.
    pub seed: u64,
    /// Exact fit against the input tensor (paper §III-B).
    pub fit: f64,
    /// Phase-2 schedule provenance (abbreviation, e.g. `"HO"`).
    pub schedule: String,
    /// Phase-1 grid provenance: partitions per mode.
    pub parts: Vec<usize>,
    /// Compression provenance (requested mlrank caps, retained energy,
    /// core shape) when the model came from the compress-then-decompose
    /// pipeline; `None` for the two-phase path. Serialised only in
    /// version-2 containers.
    pub compress: Option<CompressProvenance>,
}

/// How a model's factors are resident in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Residency {
    /// Factors decoded into owned matrices.
    Owned,
    /// Factors read zero-copy out of a shared memory map of the
    /// container file ([`Model::load_shared`]).
    Mapped,
}

impl Residency {
    /// Human-readable label (`"owned"` / `"mapped"`), used by the serving
    /// smoke and status output.
    pub fn label(self) -> &'static str {
        match self {
            Residency::Owned => "owned",
            Residency::Mapped => "mapped",
        }
    }
}

/// A borrowed view of one factor matrix: `rows × cols`, row-major. For
/// owned models it borrows the matrix's buffer; for mapped models it
/// borrows the container's memory map directly.
#[derive(Clone, Copy)]
pub struct FactorView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
}

impl<'a> FactorView<'a> {
    /// Number of rows (`I_h`).
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns (the rank `F`).
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// The whole factor, row-major.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }
    /// Row `r`.
    pub fn row(&self, r: usize) -> &'a [f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
    /// Materialises an owned copy.
    pub fn to_mat(&self) -> Mat {
        Mat::from_vec(self.rows, self.cols, self.data.to_vec())
    }
}

/// Factors resident in a shared memory map: the map itself plus, per
/// mode, the absolute byte offset and shape of its `f64` slab.
#[derive(Clone)]
struct MappedFactors {
    map: Arc<memmap2::Mmap>,
    weights: Vec<f64>,
    /// Per mode: (byte offset of the slab within the map, rows, cols).
    slabs: Vec<(usize, usize, usize)>,
}

impl MappedFactors {
    fn slab(&self, mode: usize) -> &[f64] {
        let (off, rows, cols) = self.slabs[mode];
        let n = rows * cols;
        let bytes = &self.map[off..off + n * 8];
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0, "slab alignment");
        // SAFETY: the offset was validated 8-aligned at load time (and
        // the container layout guarantees it — pages start on 8-byte
        // boundaries of a page-aligned map, slabs at +32); `f64` accepts
        // any bit pattern; this build is little-endian (checked at load),
        // so the mapped bytes *are* the in-memory representation. The
        // borrow keeps the `Arc<Mmap>` alive for the slice's lifetime.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), n) }
    }
}

#[derive(Clone)]
enum FactorStore {
    Owned(CpModel),
    Mapped(MappedFactors),
}

/// A saved/loadable decomposition: metadata plus the weighted factors,
/// resident either as owned matrices or zero-copy over a shared memory
/// map of the container (see [`Residency`]).
#[derive(Clone)]
pub struct Model {
    /// Descriptive metadata (see [`ModelMeta`]).
    pub meta: ModelMeta,
    store: FactorStore,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("meta", &self.meta)
            .field("residency", &self.residency())
            .finish()
    }
}

impl PartialEq for Model {
    /// Value equality: same metadata, same weights, same factor entries —
    /// regardless of residency (a mapped model equals its owned decode).
    fn eq(&self, other: &Self) -> bool {
        if self.meta != other.meta || self.weights() != other.weights() {
            return false;
        }
        (0..self.order()).all(|h| {
            let (a, b) = (self.factor(h), other.factor(h));
            (a.rows(), a.cols()) == (b.rows(), b.cols()) && a.as_slice() == b.as_slice()
        })
    }
}

fn model_err(reason: impl Into<String>) -> TwoPcpError {
    TwoPcpError::Model {
        reason: reason.into(),
    }
}

impl Model {
    /// Wraps a CP model with metadata, validating that they agree.
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] when `meta.rank`/`meta.dims` disagree with
    /// the factors.
    pub fn new(meta: ModelMeta, cp: CpModel) -> Result<Self> {
        if meta.rank != cp.rank() {
            return Err(model_err(format!(
                "metadata rank {} != factor rank {}",
                meta.rank,
                cp.rank()
            )));
        }
        if meta.dims != cp.dims() {
            return Err(model_err(format!(
                "metadata dims {:?} != factor dims {:?}",
                meta.dims,
                cp.dims()
            )));
        }
        Ok(Model {
            meta,
            store: FactorStore::Owned(cp),
        })
    }

    /// Promotes a driver outcome into a named artifact, recording the
    /// run's provenance (seed, schedule, grid) from its config.
    pub fn from_outcome(name: &str, outcome: &TwoPcpOutcome, config: &TwoPcpConfig) -> Self {
        Model {
            meta: ModelMeta {
                name: name.to_string(),
                rank: outcome.model.rank(),
                dims: outcome.model.dims(),
                seed: config.seed,
                fit: outcome.fit,
                schedule: config.schedule.abbrev().to_string(),
                parts: config.parts.clone(),
                compress: outcome.compress.clone(),
            },
            store: FactorStore::Owned(outcome.model.clone()),
        }
    }

    /// Decomposition rank `F`.
    pub fn rank(&self) -> usize {
        self.weights().len()
    }

    /// Tensor order `N`.
    pub fn order(&self) -> usize {
        match &self.store {
            FactorStore::Owned(cp) => cp.order(),
            FactorStore::Mapped(m) => m.slabs.len(),
        }
    }

    /// Tensor shape.
    pub fn dims(&self) -> Vec<usize> {
        (0..self.order()).map(|h| self.factor(h).rows()).collect()
    }

    /// How the factors are resident (owned matrices vs shared mmap).
    pub fn residency(&self) -> Residency {
        match &self.store {
            FactorStore::Owned(_) => Residency::Owned,
            FactorStore::Mapped(_) => Residency::Mapped,
        }
    }

    /// The component weights λ.
    pub fn weights(&self) -> &[f64] {
        match &self.store {
            FactorStore::Owned(cp) => &cp.weights,
            FactorStore::Mapped(m) => &m.weights,
        }
    }

    /// A borrowed view of mode `mode`'s factor matrix.
    ///
    /// # Panics
    /// Panics when `mode >= self.order()` (use [`Model::factor_checked`]
    /// for untrusted input).
    pub fn factor(&self, mode: usize) -> FactorView<'_> {
        match &self.store {
            FactorStore::Owned(cp) => {
                let f = &cp.factors[mode];
                FactorView {
                    data: f.as_slice(),
                    rows: f.rows(),
                    cols: f.cols(),
                }
            }
            FactorStore::Mapped(m) => {
                let (_, rows, cols) = m.slabs[mode];
                FactorView {
                    data: m.slab(mode),
                    rows,
                    cols,
                }
            }
        }
    }

    /// Materialises an owned [`CpModel`] (a cheap borrow for owned
    /// residency is impossible here because mapped factors have no
    /// backing `Mat`s; this copies in that case).
    pub fn to_cp(&self) -> CpModel {
        match &self.store {
            FactorStore::Owned(cp) => cp.clone(),
            FactorStore::Mapped(m) => CpModel::new(
                m.weights.clone(),
                (0..self.order()).map(|h| self.factor(h).to_mat()).collect(),
            )
            .expect("mapped factors validated at load"),
        }
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Serialises the container into a byte vector (the exact bytes
    /// [`Model::save`] writes).
    pub fn to_bytes(&self) -> Vec<u8> {
        // Plain models keep writing version 1, byte-for-byte what they
        // were before the compression section existed.
        let version: u32 = if self.meta.compress.is_none() {
            1
        } else {
            MODEL_VERSION
        };
        let meta = self.encode_meta();
        let mut out = Vec::with_capacity(meta.len() + 64);
        out.extend_from_slice(MODEL_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&meta);
        let sum = codec::fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        pad8(&mut out);
        for h in 0..self.order() {
            let page = codec::encode(&UnitData {
                unit: UnitId::new(h, 0),
                factor: self.factor(h).to_mat(),
                sub_factors: Vec::new(),
            });
            out.extend_from_slice(&(page.len() as u64).to_le_bytes());
            out.extend_from_slice(&page);
            pad8(&mut out);
        }
        out
    }

    /// Writes the container to `path`, atomically (write to a sibling
    /// temp file, then rename over the destination). The rename is what
    /// makes hot swaps safe for mapped readers: the old inode is never
    /// mutated, so live [`Residency::Mapped`] models keep reading
    /// consistent bytes until their map drops.
    ///
    /// # Errors
    /// [`TwoPcpError::Storage`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("2pcpm.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a container from `path`, honouring the `TPCP_MMAP` default:
    /// with mmap on this is [`Model::load_shared`] (zero-copy residency),
    /// otherwise a buffered owned decode.
    ///
    /// # Errors
    /// [`TwoPcpError::Storage`] on I/O failure, [`TwoPcpError::Model`]
    /// on a malformed or corrupted container.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Self::load_with(path, mmap_auto())
    }

    /// Loads a container, choosing the transport explicitly: `mmap`
    /// routes through [`Model::load_shared`] (factors stay resident in
    /// the map); otherwise the file is read into a buffer and decoded
    /// into owned matrices.
    pub fn load_with(path: impl AsRef<Path>, mmap: bool) -> Result<Self> {
        let path = path.as_ref();
        if mmap {
            return Self::load_shared(path);
        }
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Loads a container as a shared-mmap resident model: the whole file
    /// is validated once (header checksum, per-page checksums, shapes),
    /// then queries read the factor slabs zero-copy out of one shared
    /// memory map. Falls back to an owned decode when the platform or
    /// container layout is not eligible (mapping failure, big-endian
    /// target, legacy codec-v1 pages) — the returned model then reports
    /// [`Residency::Owned`].
    ///
    /// # Errors
    /// [`TwoPcpError::Storage`] on I/O failure, [`TwoPcpError::Model`]
    /// on a malformed or corrupted container.
    pub fn load_shared(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)?;
        let map = match unsafe { memmap2::Mmap::map(&file) } {
            Ok(map) => map,
            // Mapping can fail (empty file, exotic fs) — fall back to
            // the buffered read, which reports the real parse error.
            Err(_) => return Self::from_bytes(&std::fs::read(path)?),
        };
        map.advise_willneed(0, map.len());
        #[cfg(target_endian = "little")]
        {
            Self::from_mapped(map)
        }
        #[cfg(not(target_endian = "little"))]
        {
            Self::from_bytes(&map)
        }
    }

    /// Parses a container from bytes into an owned-residency model (the
    /// inverse of [`Model::to_bytes`]).
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] describing the first malformed field; all
    /// length fields are bounds-checked before use, so truncated or
    /// hostile inputs fail cleanly instead of panicking.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let (meta, weights, mut pos) = parse_container_head(bytes)?;
        let mut factors = Vec::with_capacity(meta.dims.len());
        for h in 0..meta.dims.len() {
            let (page, next) = next_page(bytes, pos, h)?;
            let unit =
                codec::decode(page).map_err(|e| model_err(format!("factor {h} page: {e}")))?;
            if unit.unit != UnitId::new(h, 0) || !unit.sub_factors.is_empty() {
                return Err(model_err(format!("factor {h} page carries the wrong unit")));
            }
            if unit.factor.rows() != meta.dims[h] || unit.factor.cols() != meta.rank {
                return Err(model_err(format!(
                    "factor {h} is {}×{}, metadata says {}×{}",
                    unit.factor.rows(),
                    unit.factor.cols(),
                    meta.dims[h],
                    meta.rank
                )));
            }
            factors.push(unit.factor);
            pos = next;
        }
        let cp = CpModel::new(weights, factors)
            .map_err(|e| model_err(format!("factors disagree with metadata: {e}")))?;
        Model::new(meta, cp)
    }

    /// Validates a mapped container and records slab offsets instead of
    /// decoding: one checksum pass at load, zero copies afterwards.
    #[cfg(target_endian = "little")]
    fn from_mapped(map: memmap2::Mmap) -> Result<Self> {
        let bytes: &[u8] = &map;
        let (meta, weights, mut pos) = parse_container_head(bytes)?;
        if weights.len() != meta.rank {
            return Err(model_err("factors disagree with metadata: weight arity"));
        }
        let mut slabs = Vec::with_capacity(meta.dims.len());
        for h in 0..meta.dims.len() {
            let (page, next) = next_page(bytes, pos, h)?;
            match validate_model_page(page, h, meta.dims[h], meta.rank) {
                Ok(()) => {}
                // Legacy codec-v1 page: not slab-shaped — decode owned.
                Err(PageIssue::Ineligible) => return Self::from_bytes(bytes),
                Err(PageIssue::Corrupt(e)) => return Err(e),
            }
            // `pos` addresses the u64 page-length prefix; the page (and
            // therefore the slab offset) starts just past it.
            let slab_off = pos + 8 + codec::v2_slab_offset(0);
            if !(bytes.as_ptr() as usize + slab_off).is_multiple_of(8) {
                // Cannot happen with a page-aligned map and the 8-aligned
                // container layout, but misalignment must never reach the
                // unsafe slice cast — decode owned instead.
                return Self::from_bytes(bytes);
            }
            slabs.push((slab_off, meta.dims[h], meta.rank));
            pos = next;
        }
        Ok(Model {
            meta,
            store: FactorStore::Mapped(MappedFactors {
                map: Arc::new(map),
                weights,
                slabs,
            }),
        })
    }

    fn encode_meta(&self) -> Vec<u8> {
        let m = &self.meta;
        let mut out = Vec::new();
        out.extend_from_slice(&(m.name.len() as u16).to_le_bytes());
        out.extend_from_slice(m.name.as_bytes());
        out.extend_from_slice(&(m.rank as u32).to_le_bytes());
        out.extend_from_slice(&(m.dims.len() as u32).to_le_bytes());
        for &d in &m.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(&m.seed.to_le_bytes());
        out.extend_from_slice(&m.fit.to_le_bytes());
        out.extend_from_slice(&(m.schedule.len() as u16).to_le_bytes());
        out.extend_from_slice(m.schedule.as_bytes());
        out.extend_from_slice(&(m.parts.len() as u32).to_le_bytes());
        for &p in &m.parts {
            out.extend_from_slice(&(p as u64).to_le_bytes());
        }
        if let Some(c) = &m.compress {
            out.extend_from_slice(&(c.mlrank.len() as u32).to_le_bytes());
            for &r in &c.mlrank {
                out.extend_from_slice(&(r as u64).to_le_bytes());
            }
            out.extend_from_slice(&c.energy.to_le_bytes());
            out.extend_from_slice(&(c.core_shape.len() as u32).to_le_bytes());
            for &d in &c.core_shape {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
        }
        for &w in self.weights() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    // ------------------------------------------------------------------
    // Queries (shared by the serving daemon and in-process verification)
    // ------------------------------------------------------------------

    /// Reconstructs a single tensor entry `X̃[coords]`.
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] when `coords` has the wrong arity or an
    /// index is out of range.
    pub fn entry(&self, coords: &[usize]) -> Result<f64> {
        let dims = self.dims();
        if coords.len() != dims.len() {
            return Err(model_err(format!(
                "entry wants {} coordinates, got {}",
                dims.len(),
                coords.len()
            )));
        }
        let mut prod = self.weights().to_vec();
        for (h, &c) in coords.iter().enumerate() {
            if c >= dims[h] {
                return Err(model_err(format!(
                    "coordinate {c} out of range for mode {h} (dim {})",
                    dims[h]
                )));
            }
            for (p, &a) in prod.iter_mut().zip(self.factor(h).row(c)) {
                *p *= a;
            }
        }
        Ok(prod.iter().sum())
    }

    /// Reconstructs the mode-`mode` fiber at `fixed` — the length-`I_mode`
    /// vector obtained by varying `mode` while the other coordinates are
    /// pinned to `fixed` (given in ascending mode order, `mode` omitted).
    pub fn fiber(&self, mode: usize, fixed: &[usize]) -> Result<Vec<f64>> {
        let prod = self.pinned_product(&[mode], fixed)?;
        let a = self.factor(mode);
        Ok((0..a.rows()).map(|i| dot(a.row(i), &prod)).collect())
    }

    /// Reconstructs the 2-D slice with free modes `mode_r` (rows) and
    /// `mode_c` (columns), remaining coordinates pinned to `fixed`
    /// (ascending mode order, both free modes omitted).
    pub fn slice(&self, mode_r: usize, mode_c: usize, fixed: &[usize]) -> Result<Mat> {
        if mode_r == mode_c {
            return Err(model_err("slice needs two distinct free modes"));
        }
        let prod = self.pinned_product(&[mode_r, mode_c], fixed)?;
        // out = (A_r ⊙ prod) · A_cᵀ  — scale A_r's columns by the pinned
        // product, then one matmul_t gives every (i, j) at once. The rhs
        // factor is consumed as a raw slice so mapped residency pays no
        // copy for it.
        let mut scaled = self.factor(mode_r).to_mat();
        scaled.scale_columns(&prod);
        let c = self.factor(mode_c);
        Ok(matmul_t_slices_auto(
            scaled.as_slice(),
            scaled.rows(),
            scaled.cols(),
            c.as_slice(),
            c.rows(),
        ))
    }

    /// The `k` largest entries of the mode-`mode` fiber at `fixed`,
    /// as `(index, value)` sorted by value descending (ties by index).
    pub fn top_k(&self, mode: usize, fixed: &[usize], k: usize) -> Result<Vec<(usize, f64)>> {
        let fiber = self.fiber(mode, fixed)?;
        Ok(rank_fiber(fiber, k))
    }

    /// Cosine similarity between rows `i` and `j` of mode `mode`'s factor
    /// (each row weighted by λ). Zero-norm rows compare as `0.0`.
    pub fn cosine(&self, mode: usize, i: usize, j: usize) -> Result<f64> {
        let a = self.factor_checked(mode)?;
        for &r in &[i, j] {
            if r >= a.rows() {
                return Err(model_err(format!(
                    "row {r} out of range for mode {mode} (dim {})",
                    a.rows()
                )));
            }
        }
        Ok(weighted_cosine(a.row(i), a.row(j), self.weights()))
    }

    /// The `k` rows of mode `mode`'s factor most cosine-similar to `row`
    /// (the row itself excluded), as `(index, similarity)` sorted by
    /// similarity descending (ties by index).
    pub fn similar_rows(&self, mode: usize, row: usize, k: usize) -> Result<Vec<(usize, f64)>> {
        let a = self.factor_checked(mode)?;
        if row >= a.rows() {
            return Err(model_err(format!(
                "row {row} out of range for mode {mode} (dim {})",
                a.rows()
            )));
        }
        let anchor = a.row(row);
        let mut ranked: Vec<(usize, f64)> = (0..a.rows())
            .filter(|&r| r != row)
            .map(|r| (r, weighted_cosine(anchor, a.row(r), self.weights())))
            .collect();
        ranked.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        ranked.truncate(k);
        Ok(ranked)
    }

    // ------------------------------------------------------------------
    // Batched queries (one pass through the factors for many requests)
    // ------------------------------------------------------------------

    /// Reconstructs many tensor entries in one pass: per mode, the needed
    /// factor rows are gathered once and multiplied into a `n × F`
    /// product matrix, instead of walking all modes per query. Bitwise
    /// identical to calling [`Model::entry`] per query (each component
    /// sees the same multiplications in the same ascending-mode order,
    /// and the final per-row sum accumulates ascending).
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] on the first query with wrong arity or an
    /// out-of-range index (all-or-nothing; callers wanting per-query
    /// isolation validate first).
    pub fn entries(&self, queries: &[Vec<usize>]) -> Result<Vec<f64>> {
        let dims = self.dims();
        for coords in queries {
            if coords.len() != dims.len() {
                return Err(model_err(format!(
                    "entry wants {} coordinates, got {}",
                    dims.len(),
                    coords.len()
                )));
            }
            for (h, &c) in coords.iter().enumerate() {
                if c >= dims[h] {
                    return Err(model_err(format!(
                        "coordinate {c} out of range for mode {h} (dim {})",
                        dims[h]
                    )));
                }
            }
        }
        let mut prod = broadcast_weights(self.weights(), queries.len());
        let mut rows_scratch = Vec::with_capacity(queries.len());
        for (h, view) in (0..dims.len()).map(|h| (h, self.factor(h))) {
            rows_scratch.clear();
            rows_scratch.extend(queries.iter().map(|q| q[h]));
            let gathered = gather_rows(view.as_slice(), view.rows(), view.cols(), &rows_scratch);
            prod.hadamard_assign(&gathered)
                .expect("broadcast and gather shapes agree");
        }
        Ok((0..queries.len())
            .map(|q| prod.row(q).iter().sum())
            .collect())
    }

    /// Reconstructs many mode-`mode` fibers in one kernel product:
    /// pinned products for all queries become an `n × F` matrix `P`, and
    /// one `A⁽ᵐᵒᵈᵉ⁾ · Pᵀ` through the kernel seam yields every fiber as a
    /// column. Bitwise identical to calling [`Model::fiber`] per query
    /// (the kernel contract accumulates each output element ascending,
    /// exactly like the single-query dot loop).
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] on the first invalid query (all-or-nothing).
    pub fn fibers(&self, mode: usize, queries: &[Vec<usize>]) -> Result<Vec<Vec<f64>>> {
        let mut p = broadcast_weights(self.weights(), queries.len());
        let dims = self.dims();
        if mode >= dims.len() {
            return Err(model_err(format!(
                "mode {mode} out of range for an order-{} tensor",
                dims.len()
            )));
        }
        let mut rows_scratch = Vec::with_capacity(queries.len());
        for h in 0..dims.len() {
            if h == mode {
                continue;
            }
            // `fixed` omits the free mode: pinned index of mode h sits at
            // position h (or h-1 past the free mode).
            let at = if h < mode { h } else { h - 1 };
            rows_scratch.clear();
            for q in queries {
                if q.len() + 1 != dims.len() {
                    return Err(model_err(format!(
                        "expected {} pinned coordinates, got {}",
                        dims.len() - 1,
                        q.len()
                    )));
                }
                let c = q[at];
                if c >= dims[h] {
                    return Err(model_err(format!(
                        "coordinate {c} out of range for mode {h} (dim {})",
                        dims[h]
                    )));
                }
                rows_scratch.push(c);
            }
            let view = self.factor(h);
            let gathered = gather_rows(view.as_slice(), view.rows(), view.cols(), &rows_scratch);
            p.hadamard_assign(&gathered)
                .expect("broadcast and gather shapes agree");
        }
        // Degenerate arity check when no pinned mode existed to do it.
        if dims.len() == 1 {
            for q in queries {
                if !q.is_empty() {
                    return Err(model_err(format!(
                        "expected 0 pinned coordinates, got {}",
                        q.len()
                    )));
                }
            }
        }
        let a = self.factor(mode);
        let m = matmul_t_slices_auto(a.as_slice(), a.rows(), a.cols(), p.as_slice(), p.rows());
        // Column q of the I × n product is query q's fiber.
        Ok((0..queries.len())
            .map(|q| (0..a.rows()).map(|i| m.get(i, q)).collect())
            .collect())
    }

    /// Gathers factor rows of mode `mode` into a dense
    /// `indices.len() × F` matrix (bulk row fetch for similarity-style
    /// workloads).
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] on a bad mode or out-of-range index.
    pub fn rows(&self, mode: usize, indices: &[usize]) -> Result<Mat> {
        let a = self.factor_checked(mode)?;
        for &r in indices {
            if r >= a.rows() {
                return Err(model_err(format!(
                    "row {r} out of range for mode {mode} (dim {})",
                    a.rows()
                )));
            }
        }
        Ok(gather_rows(a.as_slice(), a.rows(), a.cols(), indices))
    }

    /// `λ_f · Π_{m ∉ free} A⁽ᵐ⁾[fixed_m, f]` — the component products with
    /// every non-free mode pinned. `fixed` lists one coordinate per pinned
    /// mode, ascending; `free` is the (small) set of unpinned modes.
    fn pinned_product(&self, free: &[usize], fixed: &[usize]) -> Result<Vec<f64>> {
        let dims = self.dims();
        for &m in free {
            if m >= dims.len() {
                return Err(model_err(format!(
                    "mode {m} out of range for an order-{} tensor",
                    dims.len()
                )));
            }
        }
        if fixed.len() + free.len() != dims.len() {
            return Err(model_err(format!(
                "expected {} pinned coordinates, got {}",
                dims.len() - free.len(),
                fixed.len()
            )));
        }
        let mut prod = self.weights().to_vec();
        let mut pinned = fixed.iter();
        for (h, &dim) in dims.iter().enumerate() {
            if free.contains(&h) {
                continue;
            }
            let &c = pinned.next().expect("arity checked above");
            if c >= dim {
                return Err(model_err(format!(
                    "coordinate {c} out of range for mode {h} (dim {dim})"
                )));
            }
            for (p, &a) in prod.iter_mut().zip(self.factor(h).row(c)) {
                *p *= a;
            }
        }
        Ok(prod)
    }

    fn factor_checked(&self, mode: usize) -> Result<FactorView<'_>> {
        if mode >= self.order() {
            return Err(model_err(format!(
                "mode {mode} out of range for an order-{} tensor",
                self.order()
            )));
        }
        Ok(self.factor(mode))
    }
}

/// Ranks a fiber's entries: value descending, ties by index, truncated to
/// `k` — the single sort both [`Model::top_k`] and the batched serving
/// path use, so they cannot drift.
pub fn rank_fiber(fiber: Vec<f64>, k: usize) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = fiber.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// An `n × F` matrix whose every row is the weight vector λ — the seed of
/// the batched per-query component products.
fn broadcast_weights(weights: &[f64], n: usize) -> Mat {
    let mut data = Vec::with_capacity(n * weights.len());
    for _ in 0..n {
        data.extend_from_slice(weights);
    }
    Mat::from_vec(n, weights.len(), data)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cosine of the λ-weighted rows: weights scale each component the same
/// way reconstruction does, so "similar" means similar contribution.
fn weighted_cosine(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    let (mut ab, mut aa, mut bb) = (0.0, 0.0, 0.0);
    for ((&x, &y), &w) in a.iter().zip(b).zip(weights) {
        let (wx, wy) = (w * x, w * y);
        ab += wx * wy;
        aa += wx * wx;
        bb += wy * wy;
    }
    if aa == 0.0 || bb == 0.0 {
        return 0.0;
    }
    ab / (aa.sqrt() * bb.sqrt())
}

fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn align8(pos: usize) -> usize {
    pos.div_ceil(8) * 8
}

/// Validates the fixed header and metadata block: returns the decoded
/// metadata, the trailing weight vector, and the (8-aligned) position of
/// the first factor page's length prefix.
fn parse_container_head(bytes: &[u8]) -> Result<(ModelMeta, Vec<f64>, usize)> {
    if bytes.len() < 16 {
        return Err(model_err("container shorter than its fixed header"));
    }
    if &bytes[0..8] != MODEL_MAGIC {
        return Err(model_err("bad magic: not a 2PCP model container"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > MODEL_VERSION {
        return Err(model_err(format!(
            "unsupported container version {version} (expected 1..={MODEL_VERSION})"
        )));
    }
    let meta_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if meta_len > MAX_META_LEN {
        return Err(model_err(format!(
            "metadata length {meta_len} exceeds the {MAX_META_LEN}-byte cap"
        )));
    }
    let meta_end = 16 + meta_len as usize;
    if bytes.len() < meta_end + 8 {
        return Err(model_err("container truncated inside the metadata block"));
    }
    let stored = u64::from_le_bytes(bytes[meta_end..meta_end + 8].try_into().unwrap());
    let actual = codec::fnv1a(&bytes[..meta_end]);
    if stored != actual {
        return Err(model_err(format!(
            "metadata checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    let meta = decode_meta(&bytes[16..meta_end], version)?;
    let weights = meta_weights(&bytes[16..meta_end], &meta);
    Ok((meta, weights, align8(meta_end + 8)))
}

/// Bounds-checks the length-prefixed page starting at `pos`; returns the
/// page bytes and the (8-aligned) position of the next page.
fn next_page(bytes: &[u8], pos: usize, h: usize) -> Result<(&[u8], usize)> {
    if bytes.len() < pos + 8 {
        return Err(model_err(format!("container truncated before factor {h}")));
    }
    let page_len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    let start = pos + 8;
    let Some(end) = start
        .checked_add(page_len as usize)
        .filter(|&e| e <= bytes.len())
    else {
        return Err(model_err(format!(
            "factor {h} page length {page_len} overruns the container"
        )));
    };
    Ok((&bytes[start..end], align8(end)))
}

#[cfg(target_endian = "little")]
enum PageIssue {
    /// Structurally sound but not slab-addressable (legacy v1 layout).
    Ineligible,
    Corrupt(TwoPcpError),
}

/// Validates one factor page for the mapped load path *without* decoding
/// it: checksum, magic, shape and layout checks mirroring
/// `codec::decode`, leaving the slab untouched in place.
#[cfg(target_endian = "little")]
fn validate_model_page(
    page: &[u8],
    h: usize,
    rows: usize,
    cols: usize,
) -> std::result::Result<(), PageIssue> {
    let corrupt = |msg: String| PageIssue::Corrupt(model_err(format!("factor {h} page: {msg}")));
    if page.len() < codec::MAGIC.len() + 4 + 8 + 8 {
        return Err(corrupt("page too small".into()));
    }
    let (body, trailer) = page.split_at(page.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let computed = codec::fnv1a(body);
    if stored != computed {
        return Err(corrupt(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    if &body[..8] != codec::MAGIC.as_slice() {
        return Err(corrupt("bad magic".into()));
    }
    let word = |i: usize| u32::from_le_bytes(body[i..i + 4].try_into().expect("4 bytes"));
    if word(8) != codec::VERSION {
        // v1 pages interleave headers with the payload; no contiguous
        // slab to borrow.
        return Err(PageIssue::Ineligible);
    }
    if body.len() < codec::v2_slab_offset(0) {
        return Err(corrupt("truncated v2 header".into()));
    }
    let (mode, part) = (word(12), word(16));
    let (page_rows, page_cols, subs) = (word(20) as usize, word(24) as usize, word(28));
    if mode as usize != h || part != 0 || subs != 0 {
        return Err(PageIssue::Corrupt(model_err(format!(
            "factor {h} page carries the wrong unit"
        ))));
    }
    if page_rows != rows || page_cols != cols {
        return Err(PageIssue::Corrupt(model_err(format!(
            "factor {h} is {page_rows}×{page_cols}, metadata says {rows}×{cols}"
        ))));
    }
    let slab_bytes = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| corrupt("matrix size overflow".into()))?;
    if body.len() - codec::v2_slab_offset(0) != slab_bytes {
        return Err(corrupt("v2 slab length mismatch".into()));
    }
    Ok(())
}

/// A bounds-checked little-endian reader over the metadata block.
struct MetaReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MetaReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(model_err("metadata block truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| model_err("metadata string not UTF-8"))
    }
}

fn decode_meta(bytes: &[u8], version: u32) -> Result<ModelMeta> {
    let mut r = MetaReader { bytes, pos: 0 };
    let name = r.string()?;
    let rank = r.u32()?;
    if rank == 0 || rank > MAX_RANK {
        return Err(model_err(format!("metadata rank {rank} out of range")));
    }
    let order = r.u32()?;
    if order == 0 || order > MAX_ORDER {
        return Err(model_err(format!("metadata order {order} out of range")));
    }
    let dims: Vec<usize> = (0..order)
        .map(|_| r.u64().map(|d| d as usize))
        .collect::<Result<_>>()?;
    let seed = r.u64()?;
    let fit = r.f64()?;
    let schedule = r.string()?;
    let parts_len = r.u32()?;
    if parts_len > MAX_ORDER {
        return Err(model_err(format!(
            "metadata parts count {parts_len} out of range"
        )));
    }
    let parts: Vec<usize> = (0..parts_len)
        .map(|_| r.u64().map(|p| p as usize))
        .collect::<Result<_>>()?;
    // Version 2 inserts the compression provenance section here; version 1
    // has none (plain two-phase model).
    let compress = if version >= 2 {
        let mlrank_len = r.u32()?;
        if mlrank_len > MAX_ORDER {
            return Err(model_err(format!(
                "metadata mlrank count {mlrank_len} out of range"
            )));
        }
        let mlrank: Vec<usize> = (0..mlrank_len)
            .map(|_| r.u64().map(|v| v as usize))
            .collect::<Result<_>>()?;
        let energy = r.f64()?;
        let core_len = r.u32()?;
        if core_len > MAX_ORDER {
            return Err(model_err(format!(
                "metadata core-shape count {core_len} out of range"
            )));
        }
        let core_shape: Vec<usize> = (0..core_len)
            .map(|_| r.u64().map(|v| v as usize))
            .collect::<Result<_>>()?;
        Some(CompressProvenance {
            mlrank,
            energy,
            core_shape,
        })
    } else {
        None
    };
    // The weights follow; their arity is checked by `meta_weights`.
    Ok(ModelMeta {
        name,
        rank: rank as usize,
        dims,
        seed,
        fit,
        schedule,
        parts,
        compress,
    })
}

/// Re-walks the metadata block to extract the trailing λ vector (decoded
/// separately so `decode_meta` stays a pure header parse).
fn meta_weights(bytes: &[u8], meta: &ModelMeta) -> Vec<f64> {
    let tail = meta.rank * 8;
    if bytes.len() < tail {
        return Vec::new(); // arity mismatch — CpModel::new rejects it
    }
    bytes[bytes.len() - tail..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tpcp_tensor::random_factor;

    fn sample_model() -> Model {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let dims = [6usize, 5, 4];
        let rank = 3;
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, rank, &mut rng))
            .collect();
        let cp = CpModel::new(vec![2.0, 1.0, 0.5], factors).unwrap();
        Model::new(
            ModelMeta {
                name: "demo".into(),
                rank,
                dims: dims.to_vec(),
                seed: 11,
                fit: 0.93,
                schedule: "HO".into(),
                parts: vec![2, 2, 2],
                compress: None,
            },
            cp,
        )
        .unwrap()
    }

    fn compressed_model() -> Model {
        let mut m = sample_model();
        m.meta.compress = Some(CompressProvenance {
            mlrank: vec![4, 4, 3],
            energy: 0.9987,
            core_shape: vec![3, 3, 3],
        });
        m
    }

    #[test]
    fn roundtrip_bytes_is_identity() {
        let m = sample_model();
        let again = Model::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn plain_models_still_write_version_1() {
        let bytes = sample_model().to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
    }

    #[test]
    fn compressed_models_roundtrip_as_version_2() {
        let m = compressed_model();
        let bytes = m.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        let again = Model::from_bytes(&bytes).unwrap();
        assert_eq!(m, again);
        let c = again.meta.compress.unwrap();
        assert_eq!(c.core_shape, vec![3, 3, 3]);
        assert!((c.energy - 0.9987).abs() < 1e-15);
    }

    #[test]
    fn version_1_containers_without_provenance_still_load() {
        // A version-1 container is exactly what a pre-compression build
        // wrote; the loader must keep accepting it and report no
        // provenance.
        let bytes = sample_model().to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        let loaded = Model::from_bytes(&bytes).unwrap();
        assert!(loaded.meta.compress.is_none());
        // Future versions are rejected, not misparsed.
        let mut future = bytes;
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(Model::from_bytes(&future).is_err());
    }

    #[test]
    fn roundtrip_file_both_transports() {
        let m = sample_model();
        let dir = std::env::temp_dir().join(format!("tpcp_model_rt_{}", std::process::id()));
        let path = dir.join("demo.2pcpm");
        m.save(&path).unwrap();
        for mmap in [false, true] {
            let again = Model::load_with(&path, mmap).unwrap();
            assert_eq!(m, again, "transport mmap={mmap}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_load_is_mapped_and_bitwise_equal() {
        let m = sample_model();
        let dir = std::env::temp_dir().join(format!("tpcp_model_shared_{}", std::process::id()));
        let path = dir.join("demo.2pcpm");
        m.save(&path).unwrap();
        let mapped = Model::load_shared(&path).unwrap();
        assert_eq!(mapped.residency(), Residency::Mapped);
        assert_eq!(mapped.residency().label(), "mapped");
        assert_eq!(m.residency(), Residency::Owned);
        // Factor views are bitwise-equal to the owned decode, and every
        // query answers identically.
        for h in 0..m.order() {
            let (a, b) = (m.factor(h), mapped.factor(h));
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(
            m.entry(&[1, 2, 3]).unwrap().to_bits(),
            mapped.entry(&[1, 2, 3]).unwrap().to_bits()
        );
        let (f1, f2) = (
            m.fiber(1, &[2, 3]).unwrap(),
            mapped.fiber(1, &[2, 3]).unwrap(),
        );
        assert!(f1.iter().zip(&f2).all(|(a, b)| a.to_bits() == b.to_bits()));
        let (s1, s2) = (
            m.slice(0, 2, &[1]).unwrap(),
            mapped.slice(0, 2, &[1]).unwrap(),
        );
        assert!(s1
            .as_slice()
            .iter()
            .zip(s2.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // Clones share the same map (one mapping per model).
        let clone = mapped.clone();
        assert_eq!(clone.residency(), Residency::Mapped);
        assert_eq!(clone, mapped);
        // A mapped model survives its file being replaced (atomic rename
        // leaves the old inode's pages intact).
        sample_model().save(&path).unwrap();
        assert_eq!(
            mapped.entry(&[0, 0, 0]).unwrap().to_bits(),
            m.entry(&[0, 0, 0]).unwrap().to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_containers_are_rejected_by_shared_load_too() {
        let dir = std::env::temp_dir().join(format!("tpcp_model_sharedbad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = sample_model().to_bytes();
        // Flip a byte inside a factor page's slab region.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 24] ^= 0xff;
        let path = dir.join("bad.2pcpm");
        std::fs::write(&path, &bad).unwrap();
        assert!(Model::load_shared(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_entries_match_singles_bitwise() {
        for model in [sample_model(), {
            let dir = std::env::temp_dir().join(format!("tpcp_model_batch_{}", std::process::id()));
            let path = dir.join("demo.2pcpm");
            sample_model().save(&path).unwrap();
            let m = Model::load_shared(&path).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            m
        }] {
            let dims = model.dims();
            let queries: Vec<Vec<usize>> = (0..17)
                .map(|q| {
                    dims.iter()
                        .enumerate()
                        .map(|(h, &d)| (q * 5 + h * 3) % d)
                        .collect()
                })
                .collect();
            let batched = model.entries(&queries).unwrap();
            for (q, v) in queries.iter().zip(&batched) {
                assert_eq!(
                    v.to_bits(),
                    model.entry(q).unwrap().to_bits(),
                    "batched entry differs at {q:?} ({:?})",
                    model.residency()
                );
            }
        }
    }

    #[test]
    fn batched_fibers_match_singles_bitwise() {
        let model = sample_model();
        let dims = model.dims();
        for mode in 0..dims.len() {
            let queries: Vec<Vec<usize>> = (0..9)
                .map(|q| {
                    (0..dims.len())
                        .filter(|&h| h != mode)
                        .map(|h| (q * 7 + h) % dims[h])
                        .collect()
                })
                .collect();
            let batched = model.fibers(mode, &queries).unwrap();
            for (q, fib) in queries.iter().zip(&batched) {
                let single = model.fiber(mode, q).unwrap();
                assert_eq!(fib.len(), single.len());
                for (a, b) in fib.iter().zip(&single) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "batched fiber differs: mode {mode}, fixed {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_rows_gather_factor_rows() {
        let model = sample_model();
        let picked = model.rows(0, &[3, 0, 3]).unwrap();
        assert_eq!(picked.shape(), (3, model.rank()));
        assert_eq!(picked.row(0), model.factor(0).row(3));
        assert_eq!(picked.row(1), model.factor(0).row(0));
        assert!(model.rows(0, &[99]).is_err());
        assert!(model.rows(9, &[0]).is_err());
    }

    #[test]
    fn batched_bad_queries_are_errors() {
        let model = sample_model();
        assert!(model.entries(&[vec![0, 0]]).is_err()); // wrong arity
        assert!(model.entries(&[vec![99, 0, 0]]).is_err()); // out of range
        assert!(model.fibers(7, &[vec![0, 0]]).is_err()); // bad mode
        assert!(model.fibers(0, &[vec![0]]).is_err()); // wrong arity
        assert!(model.entries(&[]).unwrap().is_empty()); // empty batch ok
    }

    #[test]
    fn queries_match_dense_reconstruction() {
        let m = sample_model();
        let x = m.to_cp().reconstruct_dense();
        let dims = m.dims();
        // Every entry, bitwise.
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let direct = x.get(&[i, j, k]).unwrap();
                    assert_eq!(m.entry(&[i, j, k]).unwrap(), direct);
                }
            }
        }
        // Mode-1 fiber at (i=2, k=3) against entries (tolerance, not
        // bitwise: the fiber path multiplies modes in a different order).
        let fiber = m.fiber(1, &[2, 3]).unwrap();
        for (j, &v) in fiber.iter().enumerate() {
            assert!((v - m.entry(&[2, j, 3]).unwrap()).abs() < 1e-12);
        }
        // Slice (modes 0×2) at j=1 against entries.
        let slice = m.slice(0, 2, &[1]).unwrap();
        for i in 0..dims[0] {
            for k in 0..dims[2] {
                assert!((slice.get(i, k) - m.entry(&[i, 1, k]).unwrap()).abs() < 1e-12);
            }
        }
        // Top-k is the sorted fiber prefix.
        let top = m.top_k(1, &[2, 3], 2).unwrap();
        let mut sorted: Vec<(usize, f64)> = fiber.iter().copied().enumerate().collect();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        assert_eq!(top, sorted[..2]);
    }

    #[test]
    fn cosine_is_reflexive_and_bounded() {
        let m = sample_model();
        assert!((m.cosine(0, 2, 2).unwrap() - 1.0).abs() < 1e-12);
        let sims = m.similar_rows(0, 0, 10).unwrap();
        assert_eq!(sims.len(), m.dims()[0] - 1);
        assert!(sims
            .iter()
            .all(|&(r, s)| r != 0 && (-1.0001..=1.0001).contains(&s)));
        assert!(sims.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn bad_queries_are_errors_not_panics() {
        let m = sample_model();
        assert!(m.entry(&[0, 0]).is_err()); // wrong arity
        assert!(m.entry(&[99, 0, 0]).is_err()); // out of range
        assert!(m.fiber(7, &[0, 0]).is_err()); // bad mode
        assert!(m.slice(1, 1, &[0, 0]).is_err()); // duplicate free modes
        assert!(m.cosine(0, 0, 99).is_err());
        assert!(m.similar_rows(9, 0, 3).is_err());
    }

    #[test]
    fn corrupted_containers_are_rejected() {
        let good = sample_model().to_bytes();
        // Flip a metadata byte — checksum must catch it.
        let mut bad = good.clone();
        bad[20] ^= 0xff;
        assert!(Model::from_bytes(&bad).is_err());
        // Truncations at every prefix parse as errors, never panic.
        for cut in [0, 4, 15, 16, 40, good.len() - 1] {
            assert!(Model::from_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(Model::from_bytes(&bad).is_err());
        // Hostile declared metadata length.
        let mut bad = good;
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Model::from_bytes(&bad).is_err());
    }
}
