//! The saved-model artifact: a decomposition promoted from the driver's
//! loose `(factors, λ, fit)` outputs into a self-describing, queryable
//! on-disk container.
//!
//! # Container format (`.2pcpm`)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"2PCPMODL"
//! 8       4     container version (u32 LE, currently 1)
//! 12      4     metadata length `m` (u32 LE)
//! 16      m     metadata block (layout below)
//! 16+m    8     FNV-1a 64 checksum of bytes [0, 16+m)
//! …       pad   zero padding to the next 8-byte boundary
//! then, for each mode h = 0 .. order:
//!         8     page length (u64 LE)
//!         …     codec-v2 page of `UnitData { unit: (h, 0), factor: A⁽ʰ⁾ }`
//!         pad   zero padding to the next 8-byte boundary
//! ```
//!
//! Metadata block (all little-endian):
//!
//! ```text
//! u16 name_len, name (UTF-8)
//! u32 rank
//! u32 order
//! u64 × order   dims
//! u64 seed
//! f64 fit
//! u16 sched_len, schedule abbreviation (UTF-8, e.g. "HO")
//! u32 parts_len, u64 × parts_len   phase-1 grid provenance
//! -- version 2 only (compression provenance) --
//! u32 mlrank_len, u64 × mlrank_len   requested per-mode rank caps
//! f64 energy                          retained ‖X‖² fraction
//! u32 core_len, u64 × core_len        compressed core shape
//! -- end version 2 --
//! f64 × rank    component weights λ
//! ```
//!
//! Version 1 containers have no compression section; [`Model::to_bytes`]
//! still writes version 1 whenever the model carries no compression
//! provenance, so artifacts from the default pipeline are byte-for-byte
//! what they were before version 2 existed, and old files keep loading.
//!
//! Factor matrices ride as ordinary codec-v2 pages — the same
//! checksummed, bulk-copy format the unit stores swap — so the reader is
//! `tpcp_storage::codec::decode` over an `Mmap` (buffered fallback when
//! `TPCP_MMAP` is off), and a corrupted factor fails the same way a
//! corrupted swap page does.
//!
//! Besides persistence, [`Model`] is the shared query surface: the
//! serving daemon (`tpcp-serve`) and in-process verification both answer
//! entry/fiber/slice/top-k/similarity questions through these methods,
//! which is what makes served answers bitwise-comparable to local ones.

use crate::{config::TwoPcpConfig, driver::TwoPcpOutcome, Result, TwoPcpError};
use std::io::Write;
use std::path::Path;
use tpcp_compress::CompressProvenance;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_schedule::UnitId;
use tpcp_storage::{codec, mmap_auto, UnitData};

/// Magic bytes opening a model container.
pub const MODEL_MAGIC: &[u8; 8] = b"2PCPMODL";
/// Newest container format version. [`Model::save`] writes version 2 only
/// when the model carries compression provenance; plain models stay
/// version 1 (bitwise identical to pre-v2 artifacts). The reader accepts
/// both.
pub const MODEL_VERSION: u32 = 2;
/// Conventional file extension for saved models.
pub const MODEL_EXT: &str = "2pcpm";

/// Hard ceilings rejected at load time before any allocation is sized
/// from untrusted header fields.
const MAX_META_LEN: u32 = 1 << 20;
const MAX_ORDER: u32 = 64;
const MAX_RANK: u32 = 1 << 20;

/// Descriptive metadata stored alongside the factors: everything needed
/// to answer "what is this model?" without decoding a page.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelMeta {
    /// Human-readable model name (the registry key when served).
    pub name: String,
    /// Decomposition rank `F`.
    pub rank: usize,
    /// Tensor shape `I₁ … I_N`.
    pub dims: Vec<usize>,
    /// RNG seed the decomposition ran with.
    pub seed: u64,
    /// Exact fit against the input tensor (paper §III-B).
    pub fit: f64,
    /// Phase-2 schedule provenance (abbreviation, e.g. `"HO"`).
    pub schedule: String,
    /// Phase-1 grid provenance: partitions per mode.
    pub parts: Vec<usize>,
    /// Compression provenance (requested mlrank caps, retained energy,
    /// core shape) when the model came from the compress-then-decompose
    /// pipeline; `None` for the two-phase path. Serialised only in
    /// version-2 containers.
    pub compress: Option<CompressProvenance>,
}

/// A saved/loadable decomposition: metadata plus the CP model itself.
#[derive(Clone, Debug, PartialEq)]
pub struct Model {
    /// Descriptive metadata (see [`ModelMeta`]).
    pub meta: ModelMeta,
    /// The underlying weighted factors.
    pub cp: CpModel,
}

fn model_err(reason: impl Into<String>) -> TwoPcpError {
    TwoPcpError::Model {
        reason: reason.into(),
    }
}

impl Model {
    /// Wraps a CP model with metadata, validating that they agree.
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] when `meta.rank`/`meta.dims` disagree with
    /// the factors.
    pub fn new(meta: ModelMeta, cp: CpModel) -> Result<Self> {
        if meta.rank != cp.rank() {
            return Err(model_err(format!(
                "metadata rank {} != factor rank {}",
                meta.rank,
                cp.rank()
            )));
        }
        if meta.dims != cp.dims() {
            return Err(model_err(format!(
                "metadata dims {:?} != factor dims {:?}",
                meta.dims,
                cp.dims()
            )));
        }
        Ok(Model { meta, cp })
    }

    /// Promotes a driver outcome into a named artifact, recording the
    /// run's provenance (seed, schedule, grid) from its config.
    pub fn from_outcome(name: &str, outcome: &TwoPcpOutcome, config: &TwoPcpConfig) -> Self {
        Model {
            meta: ModelMeta {
                name: name.to_string(),
                rank: outcome.model.rank(),
                dims: outcome.model.dims(),
                seed: config.seed,
                fit: outcome.fit,
                schedule: config.schedule.abbrev().to_string(),
                parts: config.parts.clone(),
                compress: outcome.compress.clone(),
            },
            cp: outcome.model.clone(),
        }
    }

    /// Decomposition rank `F`.
    pub fn rank(&self) -> usize {
        self.cp.rank()
    }

    /// Tensor order `N`.
    pub fn order(&self) -> usize {
        self.cp.order()
    }

    /// Tensor shape.
    pub fn dims(&self) -> Vec<usize> {
        self.cp.dims()
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Serialises the container into a byte vector (the exact bytes
    /// [`Model::save`] writes).
    pub fn to_bytes(&self) -> Vec<u8> {
        // Plain models keep writing version 1, byte-for-byte what they
        // were before the compression section existed.
        let version: u32 = if self.meta.compress.is_none() {
            1
        } else {
            MODEL_VERSION
        };
        let meta = self.encode_meta();
        let mut out = Vec::with_capacity(meta.len() + 64);
        out.extend_from_slice(MODEL_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&meta);
        let sum = codec::fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        pad8(&mut out);
        for (h, factor) in self.cp.factors.iter().enumerate() {
            let page = codec::encode(&UnitData {
                unit: UnitId::new(h, 0),
                factor: factor.clone(),
                sub_factors: Vec::new(),
            });
            out.extend_from_slice(&(page.len() as u64).to_le_bytes());
            out.extend_from_slice(&page);
            pad8(&mut out);
        }
        out
    }

    /// Writes the container to `path`, atomically (write to a sibling
    /// temp file, then rename over the destination).
    ///
    /// # Errors
    /// [`TwoPcpError::Storage`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("2pcpm.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a container from `path`, honouring the `TPCP_MMAP` default
    /// for the read transport.
    ///
    /// # Errors
    /// [`TwoPcpError::Storage`] on I/O failure, [`TwoPcpError::Model`]
    /// on a malformed or corrupted container.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Self::load_with(path, mmap_auto())
    }

    /// Loads a container, choosing the transport explicitly: `mmap`
    /// parses straight out of the mapping; otherwise the file is read
    /// into a buffer first.
    pub fn load_with(path: impl AsRef<Path>, mmap: bool) -> Result<Self> {
        let path = path.as_ref();
        if mmap {
            let file = std::fs::File::open(path)?;
            if let Ok(map) = unsafe { memmap2::Mmap::map(&file) } {
                map.advise_willneed(0, map.len());
                return Self::from_bytes(&map);
            }
            // Mapping can fail (empty file, exotic fs) — fall through to
            // the buffered read, which reports the real parse error.
        }
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Parses a container from bytes (the inverse of [`Model::to_bytes`]).
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] describing the first malformed field; all
    /// length fields are bounds-checked before use, so truncated or
    /// hostile inputs fail cleanly instead of panicking.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 16 {
            return Err(model_err("container shorter than its fixed header"));
        }
        if &bytes[0..8] != MODEL_MAGIC {
            return Err(model_err("bad magic: not a 2PCP model container"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version == 0 || version > MODEL_VERSION {
            return Err(model_err(format!(
                "unsupported container version {version} (expected 1..={MODEL_VERSION})"
            )));
        }
        let meta_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if meta_len > MAX_META_LEN {
            return Err(model_err(format!(
                "metadata length {meta_len} exceeds the {MAX_META_LEN}-byte cap"
            )));
        }
        let meta_end = 16 + meta_len as usize;
        if bytes.len() < meta_end + 8 {
            return Err(model_err("container truncated inside the metadata block"));
        }
        let stored = u64::from_le_bytes(bytes[meta_end..meta_end + 8].try_into().unwrap());
        let actual = codec::fnv1a(&bytes[..meta_end]);
        if stored != actual {
            return Err(model_err(format!(
                "metadata checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            )));
        }
        let meta = decode_meta(&bytes[16..meta_end], version)?;

        // Factor pages: length-prefixed, 8-aligned, one per mode.
        let mut pos = align8(meta_end + 8);
        let mut factors = Vec::with_capacity(meta.dims.len());
        for h in 0..meta.dims.len() {
            if bytes.len() < pos + 8 {
                return Err(model_err(format!("container truncated before factor {h}")));
            }
            let page_len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let Some(end) = pos
                .checked_add(page_len as usize)
                .filter(|&e| e <= bytes.len())
            else {
                return Err(model_err(format!(
                    "factor {h} page length {page_len} overruns the container"
                )));
            };
            let unit = codec::decode(&bytes[pos..end])
                .map_err(|e| model_err(format!("factor {h} page: {e}")))?;
            if unit.unit != UnitId::new(h, 0) || !unit.sub_factors.is_empty() {
                return Err(model_err(format!("factor {h} page carries the wrong unit")));
            }
            if unit.factor.rows() != meta.dims[h] || unit.factor.cols() != meta.rank {
                return Err(model_err(format!(
                    "factor {h} is {}×{}, metadata says {}×{}",
                    unit.factor.rows(),
                    unit.factor.cols(),
                    meta.dims[h],
                    meta.rank
                )));
            }
            factors.push(unit.factor);
            pos = align8(end);
        }
        let cp = CpModel::new(meta_weights(&bytes[16..meta_end], &meta), factors)
            .map_err(|e| model_err(format!("factors disagree with metadata: {e}")))?;
        Model::new(meta, cp)
    }

    fn encode_meta(&self) -> Vec<u8> {
        let m = &self.meta;
        let mut out = Vec::new();
        out.extend_from_slice(&(m.name.len() as u16).to_le_bytes());
        out.extend_from_slice(m.name.as_bytes());
        out.extend_from_slice(&(m.rank as u32).to_le_bytes());
        out.extend_from_slice(&(m.dims.len() as u32).to_le_bytes());
        for &d in &m.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(&m.seed.to_le_bytes());
        out.extend_from_slice(&m.fit.to_le_bytes());
        out.extend_from_slice(&(m.schedule.len() as u16).to_le_bytes());
        out.extend_from_slice(m.schedule.as_bytes());
        out.extend_from_slice(&(m.parts.len() as u32).to_le_bytes());
        for &p in &m.parts {
            out.extend_from_slice(&(p as u64).to_le_bytes());
        }
        if let Some(c) = &m.compress {
            out.extend_from_slice(&(c.mlrank.len() as u32).to_le_bytes());
            for &r in &c.mlrank {
                out.extend_from_slice(&(r as u64).to_le_bytes());
            }
            out.extend_from_slice(&c.energy.to_le_bytes());
            out.extend_from_slice(&(c.core_shape.len() as u32).to_le_bytes());
            for &d in &c.core_shape {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
        }
        for &w in &self.cp.weights {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    // ------------------------------------------------------------------
    // Queries (shared by the serving daemon and in-process verification)
    // ------------------------------------------------------------------

    /// Reconstructs a single tensor entry `X̃[coords]`.
    ///
    /// # Errors
    /// [`TwoPcpError::Model`] when `coords` has the wrong arity or an
    /// index is out of range.
    pub fn entry(&self, coords: &[usize]) -> Result<f64> {
        let dims = self.cp.dims();
        if coords.len() != dims.len() {
            return Err(model_err(format!(
                "entry wants {} coordinates, got {}",
                dims.len(),
                coords.len()
            )));
        }
        let mut prod = self.cp.weights.clone();
        for (h, (&c, factor)) in coords.iter().zip(&self.cp.factors).enumerate() {
            if c >= dims[h] {
                return Err(model_err(format!(
                    "coordinate {c} out of range for mode {h} (dim {})",
                    dims[h]
                )));
            }
            for (p, &a) in prod.iter_mut().zip(factor.row(c)) {
                *p *= a;
            }
        }
        Ok(prod.iter().sum())
    }

    /// Reconstructs the mode-`mode` fiber at `fixed` — the length-`I_mode`
    /// vector obtained by varying `mode` while the other coordinates are
    /// pinned to `fixed` (given in ascending mode order, `mode` omitted).
    pub fn fiber(&self, mode: usize, fixed: &[usize]) -> Result<Vec<f64>> {
        let prod = self.pinned_product(&[mode], fixed)?;
        let a = &self.cp.factors[mode];
        Ok((0..a.rows()).map(|i| dot(a.row(i), &prod)).collect())
    }

    /// Reconstructs the 2-D slice with free modes `mode_r` (rows) and
    /// `mode_c` (columns), remaining coordinates pinned to `fixed`
    /// (ascending mode order, both free modes omitted).
    pub fn slice(&self, mode_r: usize, mode_c: usize, fixed: &[usize]) -> Result<Mat> {
        if mode_r == mode_c {
            return Err(model_err("slice needs two distinct free modes"));
        }
        let prod = self.pinned_product(&[mode_r, mode_c], fixed)?;
        // out = (A_r ⊙ prod) · A_cᵀ  — scale A_r's columns by the pinned
        // product, then one matmul_t gives every (i, j) at once.
        let mut scaled = self.cp.factors[mode_r].clone();
        scaled.scale_columns(&prod);
        scaled
            .matmul_t(&self.cp.factors[mode_c])
            .map_err(TwoPcpError::Linalg)
    }

    /// The `k` largest entries of the mode-`mode` fiber at `fixed`,
    /// as `(index, value)` sorted by value descending (ties by index).
    pub fn top_k(&self, mode: usize, fixed: &[usize], k: usize) -> Result<Vec<(usize, f64)>> {
        let fiber = self.fiber(mode, fixed)?;
        let mut ranked: Vec<(usize, f64)> = fiber.into_iter().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        Ok(ranked)
    }

    /// Cosine similarity between rows `i` and `j` of mode `mode`'s factor
    /// (each row weighted by λ). Zero-norm rows compare as `0.0`.
    pub fn cosine(&self, mode: usize, i: usize, j: usize) -> Result<f64> {
        let a = self.factor_checked(mode)?;
        for &r in &[i, j] {
            if r >= a.rows() {
                return Err(model_err(format!(
                    "row {r} out of range for mode {mode} (dim {})",
                    a.rows()
                )));
            }
        }
        Ok(weighted_cosine(a.row(i), a.row(j), &self.cp.weights))
    }

    /// The `k` rows of mode `mode`'s factor most cosine-similar to `row`
    /// (the row itself excluded), as `(index, similarity)` sorted by
    /// similarity descending (ties by index).
    pub fn similar_rows(&self, mode: usize, row: usize, k: usize) -> Result<Vec<(usize, f64)>> {
        let a = self.factor_checked(mode)?;
        if row >= a.rows() {
            return Err(model_err(format!(
                "row {row} out of range for mode {mode} (dim {})",
                a.rows()
            )));
        }
        let anchor = a.row(row);
        let mut ranked: Vec<(usize, f64)> = (0..a.rows())
            .filter(|&r| r != row)
            .map(|r| (r, weighted_cosine(anchor, a.row(r), &self.cp.weights)))
            .collect();
        ranked.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        ranked.truncate(k);
        Ok(ranked)
    }

    /// `λ_f · Π_{m ∉ free} A⁽ᵐ⁾[fixed_m, f]` — the component products with
    /// every non-free mode pinned. `fixed` lists one coordinate per pinned
    /// mode, ascending; `free` is the (small) set of unpinned modes.
    fn pinned_product(&self, free: &[usize], fixed: &[usize]) -> Result<Vec<f64>> {
        let dims = self.cp.dims();
        for &m in free {
            if m >= dims.len() {
                return Err(model_err(format!(
                    "mode {m} out of range for an order-{} tensor",
                    dims.len()
                )));
            }
        }
        if fixed.len() + free.len() != dims.len() {
            return Err(model_err(format!(
                "expected {} pinned coordinates, got {}",
                dims.len() - free.len(),
                fixed.len()
            )));
        }
        let mut prod = self.cp.weights.clone();
        let mut pinned = fixed.iter();
        for (h, factor) in self.cp.factors.iter().enumerate() {
            if free.contains(&h) {
                continue;
            }
            let &c = pinned.next().expect("arity checked above");
            if c >= dims[h] {
                return Err(model_err(format!(
                    "coordinate {c} out of range for mode {h} (dim {})",
                    dims[h]
                )));
            }
            for (p, &a) in prod.iter_mut().zip(factor.row(c)) {
                *p *= a;
            }
        }
        Ok(prod)
    }

    fn factor_checked(&self, mode: usize) -> Result<&Mat> {
        self.cp.factors.get(mode).ok_or_else(|| {
            model_err(format!(
                "mode {mode} out of range for an order-{} tensor",
                self.cp.order()
            ))
        })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cosine of the λ-weighted rows: weights scale each component the same
/// way reconstruction does, so "similar" means similar contribution.
fn weighted_cosine(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    let (mut ab, mut aa, mut bb) = (0.0, 0.0, 0.0);
    for ((&x, &y), &w) in a.iter().zip(b).zip(weights) {
        let (wx, wy) = (w * x, w * y);
        ab += wx * wy;
        aa += wx * wx;
        bb += wy * wy;
    }
    if aa == 0.0 || bb == 0.0 {
        return 0.0;
    }
    ab / (aa.sqrt() * bb.sqrt())
}

fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn align8(pos: usize) -> usize {
    pos.div_ceil(8) * 8
}

/// A bounds-checked little-endian reader over the metadata block.
struct MetaReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MetaReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(model_err("metadata block truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| model_err("metadata string not UTF-8"))
    }
}

fn decode_meta(bytes: &[u8], version: u32) -> Result<ModelMeta> {
    let mut r = MetaReader { bytes, pos: 0 };
    let name = r.string()?;
    let rank = r.u32()?;
    if rank == 0 || rank > MAX_RANK {
        return Err(model_err(format!("metadata rank {rank} out of range")));
    }
    let order = r.u32()?;
    if order == 0 || order > MAX_ORDER {
        return Err(model_err(format!("metadata order {order} out of range")));
    }
    let dims: Vec<usize> = (0..order)
        .map(|_| r.u64().map(|d| d as usize))
        .collect::<Result<_>>()?;
    let seed = r.u64()?;
    let fit = r.f64()?;
    let schedule = r.string()?;
    let parts_len = r.u32()?;
    if parts_len > MAX_ORDER {
        return Err(model_err(format!(
            "metadata parts count {parts_len} out of range"
        )));
    }
    let parts: Vec<usize> = (0..parts_len)
        .map(|_| r.u64().map(|p| p as usize))
        .collect::<Result<_>>()?;
    // Version 2 inserts the compression provenance section here; version 1
    // has none (plain two-phase model).
    let compress = if version >= 2 {
        let mlrank_len = r.u32()?;
        if mlrank_len > MAX_ORDER {
            return Err(model_err(format!(
                "metadata mlrank count {mlrank_len} out of range"
            )));
        }
        let mlrank: Vec<usize> = (0..mlrank_len)
            .map(|_| r.u64().map(|v| v as usize))
            .collect::<Result<_>>()?;
        let energy = r.f64()?;
        let core_len = r.u32()?;
        if core_len > MAX_ORDER {
            return Err(model_err(format!(
                "metadata core-shape count {core_len} out of range"
            )));
        }
        let core_shape: Vec<usize> = (0..core_len)
            .map(|_| r.u64().map(|v| v as usize))
            .collect::<Result<_>>()?;
        Some(CompressProvenance {
            mlrank,
            energy,
            core_shape,
        })
    } else {
        None
    };
    // The weights follow; their arity is checked by `meta_weights`.
    Ok(ModelMeta {
        name,
        rank: rank as usize,
        dims,
        seed,
        fit,
        schedule,
        parts,
        compress,
    })
}

/// Re-walks the metadata block to extract the trailing λ vector (decoded
/// separately so `decode_meta` stays a pure header parse).
fn meta_weights(bytes: &[u8], meta: &ModelMeta) -> Vec<f64> {
    let tail = meta.rank * 8;
    if bytes.len() < tail {
        return Vec::new(); // arity mismatch — CpModel::new rejects it
    }
    bytes[bytes.len() - tail..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tpcp_tensor::random_factor;

    fn sample_model() -> Model {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let dims = [6usize, 5, 4];
        let rank = 3;
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, rank, &mut rng))
            .collect();
        let cp = CpModel::new(vec![2.0, 1.0, 0.5], factors).unwrap();
        Model::new(
            ModelMeta {
                name: "demo".into(),
                rank,
                dims: dims.to_vec(),
                seed: 11,
                fit: 0.93,
                schedule: "HO".into(),
                parts: vec![2, 2, 2],
                compress: None,
            },
            cp,
        )
        .unwrap()
    }

    fn compressed_model() -> Model {
        let mut m = sample_model();
        m.meta.compress = Some(CompressProvenance {
            mlrank: vec![4, 4, 3],
            energy: 0.9987,
            core_shape: vec![3, 3, 3],
        });
        m
    }

    #[test]
    fn roundtrip_bytes_is_identity() {
        let m = sample_model();
        let again = Model::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn plain_models_still_write_version_1() {
        let bytes = sample_model().to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
    }

    #[test]
    fn compressed_models_roundtrip_as_version_2() {
        let m = compressed_model();
        let bytes = m.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        let again = Model::from_bytes(&bytes).unwrap();
        assert_eq!(m, again);
        let c = again.meta.compress.unwrap();
        assert_eq!(c.core_shape, vec![3, 3, 3]);
        assert!((c.energy - 0.9987).abs() < 1e-15);
    }

    #[test]
    fn version_1_containers_without_provenance_still_load() {
        // A version-1 container is exactly what a pre-compression build
        // wrote; the loader must keep accepting it and report no
        // provenance.
        let bytes = sample_model().to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        let loaded = Model::from_bytes(&bytes).unwrap();
        assert!(loaded.meta.compress.is_none());
        // Future versions are rejected, not misparsed.
        let mut future = bytes;
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(Model::from_bytes(&future).is_err());
    }

    #[test]
    fn roundtrip_file_both_transports() {
        let m = sample_model();
        let dir = std::env::temp_dir().join(format!("tpcp_model_rt_{}", std::process::id()));
        let path = dir.join("demo.2pcpm");
        m.save(&path).unwrap();
        for mmap in [false, true] {
            let again = Model::load_with(&path, mmap).unwrap();
            assert_eq!(m, again, "transport mmap={mmap}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_match_dense_reconstruction() {
        let m = sample_model();
        let x = m.cp.reconstruct_dense();
        let dims = m.dims();
        // Every entry, bitwise.
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let direct = x.get(&[i, j, k]).unwrap();
                    assert_eq!(m.entry(&[i, j, k]).unwrap(), direct);
                }
            }
        }
        // Mode-1 fiber at (i=2, k=3) against entries (tolerance, not
        // bitwise: the fiber path multiplies modes in a different order).
        let fiber = m.fiber(1, &[2, 3]).unwrap();
        for (j, &v) in fiber.iter().enumerate() {
            assert!((v - m.entry(&[2, j, 3]).unwrap()).abs() < 1e-12);
        }
        // Slice (modes 0×2) at j=1 against entries.
        let slice = m.slice(0, 2, &[1]).unwrap();
        for i in 0..dims[0] {
            for k in 0..dims[2] {
                assert!((slice.get(i, k) - m.entry(&[i, 1, k]).unwrap()).abs() < 1e-12);
            }
        }
        // Top-k is the sorted fiber prefix.
        let top = m.top_k(1, &[2, 3], 2).unwrap();
        let mut sorted: Vec<(usize, f64)> = fiber.iter().copied().enumerate().collect();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        assert_eq!(top, sorted[..2]);
    }

    #[test]
    fn cosine_is_reflexive_and_bounded() {
        let m = sample_model();
        assert!((m.cosine(0, 2, 2).unwrap() - 1.0).abs() < 1e-12);
        let sims = m.similar_rows(0, 0, 10).unwrap();
        assert_eq!(sims.len(), m.dims()[0] - 1);
        assert!(sims
            .iter()
            .all(|&(r, s)| r != 0 && (-1.0001..=1.0001).contains(&s)));
        assert!(sims.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn bad_queries_are_errors_not_panics() {
        let m = sample_model();
        assert!(m.entry(&[0, 0]).is_err()); // wrong arity
        assert!(m.entry(&[99, 0, 0]).is_err()); // out of range
        assert!(m.fiber(7, &[0, 0]).is_err()); // bad mode
        assert!(m.slice(1, 1, &[0, 0]).is_err()); // duplicate free modes
        assert!(m.cosine(0, 0, 99).is_err());
        assert!(m.similar_rows(9, 0, 3).is_err());
    }

    #[test]
    fn corrupted_containers_are_rejected() {
        let good = sample_model().to_bytes();
        // Flip a metadata byte — checksum must catch it.
        let mut bad = good.clone();
        bad[20] ^= 0xff;
        assert!(Model::from_bytes(&bad).is_err());
        // Truncations at every prefix parse as errors, never panic.
        for cut in [0, 4, 15, 16, 40, good.len() - 1] {
            assert!(Model::from_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(Model::from_bytes(&bad).is_err());
        // Hostile declared metadata length.
        let mut bad = good;
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Model::from_bytes(&bad).is_err());
    }
}
