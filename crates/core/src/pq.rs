//! The RAM-resident `P`/`Q` caches of the refinement phase.
//!
//! For every block `l` and mode `h` the paper maintains
//! `P(h)_l = U(h)_lᵀ A(h)(l_h)` and `Q(h)_l = A(h)(l_h)ᵀ A(h)(l_h)` — `F×F`
//! matrices revised *in place* after each sub-factor update (Algorithm 1/2,
//! Observation #2). `Q(h)_l` depends on the block only through its mode-`h`
//! partition, so it is stored per *unit* rather than per block.
//!
//! These caches are small (`|K|·N·F²` + `ΣKᵢ·F²` doubles) relative to the
//! swappable units and are excluded from the buffer budget, matching the
//! paper's memory accounting (§IV-A counts only `A` and `U` data).

use crate::{Result, TwoPcpError};
use std::time::Instant;
use tpcp_linalg::{hadamard_all, Mat};
use tpcp_partition::Grid;
use tpcp_schedule::UnitId;

/// Hotness counters for the `Q`-Hadamard fold of the refine loop
/// (ROADMAP item 3 asks whether `q_hadamard` is ever hot enough to
/// justify a phase-2 dimension tree; these counters answer it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QHadamardStats {
    /// Calls to [`PqCache::q_hadamard_excluding_cached`].
    pub calls: u64,
    /// Wall time spent inside those calls, in nanoseconds.
    pub ns: u64,
}

impl QHadamardStats {
    /// Total fold time in milliseconds.
    pub fn ms(&self) -> f64 {
        self.ns as f64 / 1e6
    }
}

/// Reusable fold-prefix scratch for
/// [`PqCache::q_hadamard_excluding_cached`].
///
/// The cached partials are only valid while the `Q` entries they folded
/// stay untouched: callers must [`QHadamardScratch::clear`] the scratch
/// after any `set_q` (the per-unit update loop clears it once per unit,
/// before scanning the unit's blocks).
#[derive(Default)]
pub struct QHadamardScratch {
    /// Linear unit indices of the cached fold, in ascending-mode order.
    keys: Vec<usize>,
    /// `partials[i]` = Hadamard fold of `q[keys[0..=i]]`.
    partials: Vec<Mat>,
    /// Lifetime call/time counters (survive [`QHadamardScratch::clear`]).
    stats: QHadamardStats,
}

impl QHadamardScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every cached prefix (required whenever a `Q` entry changes).
    /// Hotness counters are *not* reset — they tally the whole run.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.partials.clear();
    }

    /// Accumulated call/time counters.
    pub fn stats(&self) -> QHadamardStats {
        self.stats
    }
}

/// The `P`/`Q` cache (see module docs).
pub struct PqCache {
    order: usize,
    rank: usize,
    /// `p[block][mode]` = `U(mode)_blockᵀ · A(mode)(block_mode)`.
    p: Vec<Vec<Mat>>,
    /// `q[unit.linear]` = `A(i)(kᵢ)ᵀ · A(i)(kᵢ)`.
    q: Vec<Mat>,
}

impl PqCache {
    /// An all-zero cache for `grid` at rank `rank`.
    pub fn new(grid: &Grid, rank: usize) -> Self {
        PqCache {
            order: grid.order(),
            rank,
            p: (0..grid.num_blocks())
                .map(|_| (0..grid.order()).map(|_| Mat::zeros(rank, rank)).collect())
                .collect(),
            q: (0..grid.num_units())
                .map(|_| Mat::zeros(rank, rank))
                .collect(),
        }
    }

    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// `P(mode)_block`.
    pub fn p(&self, block: usize, mode: usize) -> &Mat {
        &self.p[block][mode]
    }

    /// Replaces `P(mode)_block`.
    pub fn set_p(&mut self, block: usize, mode: usize, value: Mat) {
        debug_assert_eq!(value.shape(), (self.rank, self.rank));
        self.p[block][mode] = value;
    }

    /// `Q` of the unit `⟨mode, part⟩`.
    pub fn q(&self, grid: &Grid, unit: UnitId) -> &Mat {
        &self.q[unit.linear(grid)]
    }

    /// Replaces `Q` of the unit.
    pub fn set_q(&mut self, grid: &Grid, unit: UnitId, value: Mat) {
        debug_assert_eq!(value.shape(), (self.rank, self.rank));
        self.q[unit.linear(grid)] = value;
    }

    /// Hadamard product of `P(h)_block` over all modes `h ≠ mode`
    /// (the paper's `P_l ⊘ (U(i)ᵀ_l A(i)(kᵢ))`, computed without the
    /// numerically fragile element-wise division).
    ///
    /// # Errors
    /// Propagates shape mismatches (impossible for a well-formed cache).
    pub fn p_hadamard_excluding(&self, block: usize, mode: usize) -> Result<Mat> {
        let mats: Vec<&Mat> = (0..self.order)
            .filter(|&h| h != mode)
            .map(|h| &self.p[block][h])
            .collect();
        hadamard_all(&mats).map_err(TwoPcpError::from)
    }

    /// Hadamard product of `Q` over all modes `h ≠ mode` for block
    /// `coords` (the summand of `S(i)(kᵢ)`).
    ///
    /// # Errors
    /// Propagates shape mismatches (impossible for a well-formed cache).
    pub fn q_hadamard_excluding(&self, grid: &Grid, coords: &[usize], mode: usize) -> Result<Mat> {
        let mats: Vec<&Mat> = (0..self.order)
            .filter(|&h| h != mode)
            .map(|h| &self.q[UnitId::new(h, coords[h]).linear(grid)])
            .collect();
        hadamard_all(&mats).map_err(TwoPcpError::from)
    }

    /// [`PqCache::q_hadamard_excluding`] with fold-prefix reuse:
    /// consecutive blocks of one sub-factor update walk the grid with the
    /// trailing coordinates varying fastest, so the ascending-mode fold
    /// over their `Q` operands shares a long leading prefix from block to
    /// block. The scratch keeps each fold intermediate keyed by its unit;
    /// a call re-folds only past the longest common prefix.
    ///
    /// Bitwise-identical to the uncached variant: `hadamard_all` is a
    /// left fold over the same ascending operand list, and the cached
    /// partials *are* that fold's intermediates.
    ///
    /// # Errors
    /// Propagates shape mismatches (impossible for a well-formed cache).
    pub fn q_hadamard_excluding_cached(
        &self,
        grid: &Grid,
        coords: &[usize],
        mode: usize,
        scratch: &mut QHadamardScratch,
    ) -> Result<Mat> {
        let start = Instant::now();
        let keys: Vec<usize> = (0..self.order)
            .filter(|&h| h != mode)
            .map(|h| UnitId::new(h, coords[h]).linear(grid))
            .collect();
        let lcp = keys
            .iter()
            .zip(&scratch.keys)
            .take_while(|(a, b)| a == b)
            .count();
        scratch.keys.truncate(lcp);
        scratch.partials.truncate(lcp);
        for &key in &keys[lcp..] {
            let next = match scratch.partials.last() {
                None => self.q[key].clone(),
                Some(prev) => {
                    let mut m = prev.clone();
                    m.hadamard_assign(&self.q[key]).map_err(TwoPcpError::from)?;
                    m
                }
            };
            scratch.keys.push(key);
            scratch.partials.push(next);
        }
        let out = match scratch.partials.last() {
            Some(m) => m.clone(),
            // An order-1 grid excludes every mode; match `hadamard_all(&[])`.
            None => Mat::zeros(0, 0),
        };
        scratch.stats.calls += 1;
        scratch.stats.ns += start.elapsed().as_nanos() as u64;
        Ok(out)
    }

    /// Surrogate fit of the current global factors against the Phase-1
    /// reconstruction (see crate docs of [`crate::phase2`]):
    ///
    /// `‖X̂₁ − X̂‖² = Σ_l ( ‖X̂₁_l‖² − 2·1ᵀ(⊛_h P(h)_l)1 + 1ᵀ(⊛_h Q(h)_l)1 )`
    ///
    /// computed entirely from the caches — zero I/O.
    ///
    /// # Errors
    /// Propagates cache-shape mismatches (impossible when well-formed).
    #[allow(clippy::needless_range_loop)]
    pub fn surrogate_fit(&self, grid: &Grid, u_norm_sq: &[f64]) -> Result<f64> {
        debug_assert_eq!(u_norm_sq.len(), grid.num_blocks());
        let mut err_sq = 0.0;
        let mut ref_sq = 0.0;
        for block in 0..grid.num_blocks() {
            let coords = grid.block_coords(block);
            let p_refs: Vec<&Mat> = (0..self.order).map(|h| &self.p[block][h]).collect();
            let inner = hadamard_all(&p_refs)?.sum();
            let q_refs: Vec<&Mat> = (0..self.order)
                .map(|h| &self.q[UnitId::new(h, coords[h]).linear(grid)])
                .collect();
            let model_sq = hadamard_all(&q_refs)?.sum();
            err_sq += (u_norm_sq[block] - 2.0 * inner + model_sq).max(0.0);
            ref_sq += u_norm_sq[block];
        }
        if ref_sq <= 0.0 {
            return Ok(1.0);
        }
        Ok(1.0 - (err_sq.sqrt() / ref_sq.sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid22() -> Grid {
        Grid::uniform(&[4, 4], 2)
    }

    #[test]
    fn new_cache_is_zeroed() {
        let g = grid22();
        let pq = PqCache::new(&g, 3);
        assert_eq!(pq.rank(), 3);
        assert_eq!(pq.p(0, 0).shape(), (3, 3));
        assert_eq!(pq.q(&g, UnitId::new(1, 1)).shape(), (3, 3));
        assert!(pq.p(3, 1).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let g = grid22();
        let mut pq = PqCache::new(&g, 2);
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        pq.set_p(2, 1, m.clone());
        assert_eq!(pq.p(2, 1), &m);
        pq.set_q(&g, UnitId::new(1, 0), m.clone());
        assert_eq!(pq.q(&g, UnitId::new(1, 0)), &m);
    }

    #[test]
    fn hadamard_excluding_skips_the_mode() {
        let g = grid22();
        let mut pq = PqCache::new(&g, 1);
        pq.set_p(0, 0, Mat::from_rows(&[&[2.0]]));
        pq.set_p(0, 1, Mat::from_rows(&[&[5.0]]));
        // Excluding mode 0 leaves only mode 1's P.
        assert_eq!(pq.p_hadamard_excluding(0, 0).unwrap().get(0, 0), 5.0);
        assert_eq!(pq.p_hadamard_excluding(0, 1).unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn q_hadamard_uses_block_coords() {
        let g = grid22();
        let mut pq = PqCache::new(&g, 1);
        pq.set_q(&g, UnitId::new(0, 1), Mat::from_rows(&[&[3.0]]));
        pq.set_q(&g, UnitId::new(1, 0), Mat::from_rows(&[&[7.0]]));
        // Block (1, 0): excluding mode 1 leaves Q of unit <0,1> = 3.
        let got = pq.q_hadamard_excluding(&g, &[1, 0], 1).unwrap();
        assert_eq!(got.get(0, 0), 3.0);
        // Excluding mode 0 leaves Q of unit <1,0> = 7.
        let got = pq.q_hadamard_excluding(&g, &[1, 0], 0).unwrap();
        assert_eq!(got.get(0, 0), 7.0);
    }

    #[test]
    fn cached_q_hadamard_matches_uncached_bitwise() {
        let g = Grid::uniform(&[4, 4, 4], 2);
        let mut pq = PqCache::new(&g, 2);
        for u in 0..g.num_units() {
            let v = 0.3 + 0.17 * u as f64;
            pq.set_q(
                &g,
                UnitId::from_linear(&g, u),
                Mat::from_rows(&[&[v, v * 1.1], &[v * 0.9, v * v]]),
            );
        }
        let mut scratch = QHadamardScratch::new();
        // Walk blocks in linear order (trailing coordinate fastest — the
        // refine loop's order) and check every mode against the uncached
        // fold, bit for bit.
        for block in 0..g.num_blocks() {
            let coords = g.block_coords(block);
            for mode in 0..3 {
                let slow = pq.q_hadamard_excluding(&g, &coords, mode).unwrap();
                let fast = pq
                    .q_hadamard_excluding_cached(&g, &coords, mode, &mut scratch)
                    .unwrap();
                let slow_bits: Vec<u64> = slow.as_slice().iter().map(|v| v.to_bits()).collect();
                let fast_bits: Vec<u64> = fast.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(slow_bits, fast_bits, "block {block} mode {mode}");
            }
        }
    }

    #[test]
    fn q_hadamard_scratch_clear_forgets_stale_partials() {
        let g = grid22();
        let mut pq = PqCache::new(&g, 1);
        pq.set_q(&g, UnitId::new(0, 1), Mat::from_rows(&[&[3.0]]));
        pq.set_q(&g, UnitId::new(1, 0), Mat::from_rows(&[&[7.0]]));
        let mut scratch = QHadamardScratch::new();
        let got = pq
            .q_hadamard_excluding_cached(&g, &[1, 0], 1, &mut scratch)
            .unwrap();
        assert_eq!(got.get(0, 0), 3.0);
        // Mutate the folded Q entry; a cleared scratch must re-fold.
        pq.set_q(&g, UnitId::new(0, 1), Mat::from_rows(&[&[4.0]]));
        scratch.clear();
        let got = pq
            .q_hadamard_excluding_cached(&g, &[1, 0], 1, &mut scratch)
            .unwrap();
        assert_eq!(got.get(0, 0), 4.0);
    }

    #[test]
    fn surrogate_fit_perfect_alignment() {
        // Rank 1, every block: P = Q = u_norm contribution s.t. error = 0.
        let g = grid22();
        let mut pq = PqCache::new(&g, 1);
        for b in 0..g.num_blocks() {
            for m in 0..2 {
                pq.set_p(b, m, Mat::from_rows(&[&[2.0]]));
            }
        }
        for u in 0..g.num_units() {
            pq.set_q(&g, UnitId::from_linear(&g, u), Mat::from_rows(&[&[2.0]]));
        }
        // Per block: inner = 4, model_sq = 4 ⇒ choose u_norm_sq = 4.
        let fit = pq.surrogate_fit(&g, &[4.0; 4]).unwrap();
        assert!((fit - 1.0).abs() < 1e-12);
    }

    #[test]
    fn surrogate_fit_detects_error() {
        let g = grid22();
        let pq = PqCache::new(&g, 1); // all-zero model
        let fit = pq.surrogate_fit(&g, &[1.0; 4]).unwrap();
        // err² = Σ u_norm_sq ⇒ fit = 0.
        assert!(fit.abs() < 1e-12);
    }

    #[test]
    fn surrogate_fit_zero_reference() {
        let g = grid22();
        let pq = PqCache::new(&g, 1);
        assert_eq!(pq.surrogate_fit(&g, &[0.0; 4]).unwrap(), 1.0);
    }
}
