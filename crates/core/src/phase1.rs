//! Phase 1: independent (parallel) decomposition of every block, streamed
//! from a [`BlockSource`].
//!
//! Each sub-tensor `X_k` is decomposed with standard CP-ALS into rank-`F`
//! sub-factors `U(1)_k … U(N)_k` (paper §IV, Observation #1). Blocks are
//! *pulled* from a streaming [`BlockSource`] one batch at a time (batch =
//! the [`tpcp_par`] thread budget), so peak Phase-1 memory is
//! O(largest block × threads) — never O(tensor). Entry points:
//!
//! * [`run_phase1_source`] — the streaming core: pull blocks, decompose
//!   each with in-process parallel workers, emit the per-mode
//!   *data-access units* shard-by-shard through a [`tpcp_mapreduce`]
//!   aggregation job;
//! * [`run_phase1_dense`] / [`run_phase1_sparse`] — thin adapters wrapping
//!   an in-memory tensor in a memory source (bit-identical results);
//! * [`run_phase1_mapreduce`] / [`run_phase1_mapreduce_source`] — the
//!   paper's MapReduce formulation, mapping `⟨b, i, j, k, X(i,j,k)⟩ on b`
//!   and decomposing each block in a reducer, running on the
//!   [`tpcp_mapreduce`] substrate.
//!
//! All paths end by assembling the per-mode data-access units
//! (`A(i)(kᵢ)` + slab sub-factors) through the aggregation job and writing
//! them — grouped by destination shard — to the unit store that Phase 2
//! will refine against.

use crate::config::{InitKind, TwoPcpConfig};
use crate::{Result, TwoPcpError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use tpcp_cp::{cp_als_dense, cp_als_sparse, AlsOptions, CpModel};
use tpcp_linalg::Mat;
use tpcp_mapreduce::{run_job, JobCounters, MapReduceJob, MrConfig};
use tpcp_par::ParConfig;
use tpcp_partition::{Block, BlockSource, DenseMemorySource, Grid, SparseMemorySource};
use tpcp_schedule::UnitId;
use tpcp_storage::{UnitData, UnitStore};
use tpcp_tensor::{random_factor, DenseTensor, SparseBuilder, SparseTensor};

/// Everything Phase 2 (and the evaluation harness) needs to know about the
/// completed first phase.
#[derive(Clone, Debug)]
pub struct Phase1Result {
    /// The partitioning grid.
    pub grid: Grid,
    /// `‖X_k‖²` per block (enables streaming exact-accuracy computation).
    pub block_norms_sq: Vec<f64>,
    /// `‖X̂₁_k‖²` per block — the Phase-1 reconstruction norms feeding the
    /// Phase-2 surrogate fit.
    pub u_norm_sq: Vec<f64>,
    /// Per-block ALS fit achieved in Phase 1.
    pub block_fits: Vec<f64>,
    /// Total bytes of all data-access units (the paper's `memtotal`,
    /// §IV-A) — the reference the buffer fraction is taken against.
    pub total_unit_bytes: usize,
    /// Total tensor bytes streamed from the block source.
    pub ingested_bytes: u64,
    /// Peak tensor bytes simultaneously resident while ingesting — one
    /// batch of blocks (the streaming memory bound this phase guarantees;
    /// with a serial budget, exactly one block).
    pub peak_block_bytes: u64,
}

/// Builds the grid after validating partition counts against dimensions.
pub(crate) fn grid_for(cfg: &TwoPcpConfig, dims: &[usize]) -> Result<Grid> {
    let parts = cfg.resolved_parts(dims.len())?;
    for (m, (&p, &d)) in parts.iter().zip(dims).enumerate() {
        if p > d {
            return Err(TwoPcpError::Config {
                reason: format!("mode {m}: {p} partitions exceed dimension {d}"),
            });
        }
    }
    Ok(Grid::new(dims, &parts))
}

fn als_options(cfg: &TwoPcpConfig, block_seed: u64) -> AlsOptions {
    AlsOptions {
        rank: cfg.rank,
        max_iters: cfg.phase1.max_iters,
        tol: cfg.phase1.tol,
        ridge: cfg.ridge,
        seed: block_seed,
        init: None,
        // Block workers already occupy the budget; the kernels inside one
        // block stay serial rather than oversubscribing the machine.
        par: ParConfig::serial(),
        kernel: cfg.kernel,
        dimtree: cfg.dimtree,
        // Per-block tensors are already small; compressing them would be
        // pure overhead. Compression applies to the whole decomposition via
        // the driver (`TwoPcpConfig::compress`), never per Phase-1 block.
        compress: None,
    }
}

/// Spreads the component weights evenly over the modes
/// (`λ^{1/N}` per factor), so the block model becomes the identity-core
/// form `X_k ≈ I ×₁ U(1)_k ×₂ … ×_N U(N)_k` of paper eq. 1.
fn balance_weights(model: &mut CpModel) {
    let order = model.order();
    if order == 0 {
        return;
    }
    model.normalize();
    let root: Vec<f64> = model
        .weights
        .iter()
        .map(|&l| {
            if l > 0.0 {
                l.powf(1.0 / order as f64)
            } else {
                0.0
            }
        })
        .collect();
    for factor in &mut model.factors {
        factor.scale_columns(&root);
    }
    model.weights.fill(1.0);
}

/// Decomposes one streamed block, returning its balanced model and fit.
fn decompose_block(block: &Block, cfg: &TwoPcpConfig, seed: u64) -> Result<(CpModel, f64)> {
    match block {
        Block::Dense(t) => {
            let report = cp_als_dense(t, &als_options(cfg, seed))?;
            let mut model = report.model;
            balance_weights(&mut model);
            Ok((model, report.final_fit))
        }
        Block::Sparse(t) => {
            if t.is_empty() {
                // Footnote 3: empty sub-tensors get zero factors.
                return Ok((CpModel::zeros(t.dims(), cfg.rank), 1.0));
            }
            let report = cp_als_sparse(t, &als_options(cfg, seed))?;
            let mut model = report.model;
            balance_weights(&mut model);
            Ok((model, report.final_fit))
        }
    }
}

// ---------------------------------------------------------------------------
// Unit assembly: a MapReduce aggregation job over per-block factors
// ---------------------------------------------------------------------------

/// The unit key `⟨i, kᵢ⟩` crossing the assembly shuffle.
type UnitKey = (u16, u32);
/// One block's mode-`i` sub-factor crossing the shuffle:
/// `(block id, rows, cols, row-major data)`.
type FactorMsg = (u64, u32, u32, Vec<f64>);

/// The unit-aggregation job: `map` keys each per-block factor by the
/// data-access unit it belongs to, `reduce` rebuilds the unit (slab
/// sub-factors in ascending block order plus the initial global
/// sub-factor `A(i)(kᵢ)`).
struct UnitAssemblyJob<'a> {
    grid: &'a Grid,
    cfg: &'a TwoPcpConfig,
}

impl MapReduceJob for UnitAssemblyJob<'_> {
    /// `(linear block id, mode, factor)`.
    type Input = (u64, u16, Mat);
    type Key = UnitKey;
    type Value = FactorMsg;
    type Output = UnitData;

    fn map(&self, (block, mode, factor): Self::Input, emit: &mut dyn FnMut(UnitKey, FactorMsg)) {
        let part = self.grid.block_coords(block as usize)[mode as usize] as u32;
        let (rows, cols) = factor.shape();
        emit(
            (mode, part),
            (block, rows as u32, cols as u32, factor.into_vec()),
        );
    }

    fn reduce(
        &self,
        (mode, part): UnitKey,
        mut values: Vec<FactorMsg>,
        emit: &mut dyn FnMut(UnitData),
    ) {
        // Slab order is ascending linear block id, so sorting restores the
        // deterministic order regardless of shuffle arrival.
        values.sort_unstable_by_key(|&(block, _, _, _)| block);
        let sub_factors: Vec<(u64, Mat)> = values
            .into_iter()
            .map(|(block, rows, cols, data)| {
                (block, Mat::from_vec(rows as usize, cols as usize, data))
            })
            .collect();
        let (mode, part) = (mode as usize, part as usize);
        let rows = self.grid.part_len(mode, part);
        let factor = match self.cfg.init {
            InitKind::Random => {
                let mut rng =
                    StdRng::seed_from_u64(self.cfg.seed ^ ((mode as u64) << 32) ^ part as u64);
                random_factor(rows, self.cfg.rank, &mut rng)
            }
            InitKind::SlabMean => {
                let mut acc = Mat::zeros(rows, self.cfg.rank);
                for (_, u) in &sub_factors {
                    // Slab factors share the unit shape by construction.
                    acc.add_assign(u).expect("slab factor shape");
                }
                acc.scale(1.0 / sub_factors.len().max(1) as f64);
                acc
            }
        };
        emit(UnitData {
            unit: UnitId::new(mode, part),
            factor,
            sub_factors,
        });
    }
}

/// Distinguishes concurrent assembly scratch directories within a process.
static ASSEMBLY_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs the unit-aggregation job over the per-block factors and writes the
/// resulting data-access units to the store *shard-by-shard* (grouped by
/// [`UnitStore::shard_hint`], then unit order), returning the total unit
/// bytes.
fn assemble_units<S: UnitStore>(
    grid: &Grid,
    cfg: &TwoPcpConfig,
    inputs: Vec<(u64, u16, Mat)>,
    store: &mut S,
) -> Result<usize> {
    let dir = cfg
        .work_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!(
            "p1_assemble_{}_{}",
            std::process::id(),
            ASSEMBLY_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    let job = UnitAssemblyJob { grid, cfg };
    let mut mr_cfg = MrConfig::new(&dir);
    mr_cfg.num_mappers = cfg.par.threads();
    mr_cfg.par = cfg.par;
    // Internal counters: the public counter contract describes the
    // nnz-level Phase-1 job, not this assembly pass.
    let counters = JobCounters::new();
    let outcome = run_job(&job, inputs, &mr_cfg, &counters);
    // Clean the scratch directory on failure too, so failing runs do not
    // accumulate spilled factor data under the work dir.
    let _ = std::fs::remove_dir_all(&dir);
    let mut units = outcome?;
    debug_assert_eq!(units.len(), grid.num_units());
    units.sort_by_key(|u| (store.shard_hint(u.unit), u.unit.linear(grid)));
    let mut total_bytes = 0usize;
    for unit in &units {
        total_bytes += unit.payload_bytes();
        store.write(unit)?;
    }
    Ok(total_bytes)
}

// ---------------------------------------------------------------------------
// Streaming in-process path
// ---------------------------------------------------------------------------

/// Phase 1 over a streaming [`BlockSource`] with in-process parallel block
/// workers: blocks are pulled one batch (= thread budget) at a time,
/// decomposed, and dropped before the next batch loads, so peak tensor
/// residency is [`Phase1Result::peak_block_bytes`], not the tensor.
///
/// # Errors
/// Source, configuration, ALS or storage failures.
pub fn run_phase1_source<S: UnitStore>(
    src: &mut dyn BlockSource,
    cfg: &TwoPcpConfig,
    store: &mut S,
) -> Result<Phase1Result> {
    let grid = grid_for(cfg, src.dims())?;
    let nblocks = grid.num_blocks();
    let batch_len = cfg.par.threads().max(1);
    let mut block_norms_sq = Vec::with_capacity(nblocks);
    let mut block_fits = Vec::with_capacity(nblocks);
    let mut u_norm_sq = Vec::with_capacity(nblocks);
    let mut factor_inputs: Vec<(u64, u16, Mat)> = Vec::with_capacity(nblocks * grid.order());
    let mut ingested_bytes = 0u64;
    let mut peak_block_bytes = 0u64;

    let mut start = 0usize;
    while start < nblocks {
        let end = (start + batch_len).min(nblocks);
        let mut blocks = Vec::with_capacity(end - start);
        let mut resident = 0u64;
        for lin in start..end {
            let block = src.load_block(&grid, lin)?;
            resident += block.payload_bytes() as u64;
            block_norms_sq.push(block.fro_norm_sq());
            blocks.push(block);
        }
        ingested_bytes += resident;
        peak_block_bytes = peak_block_bytes.max(resident);
        let results = tpcp_par::par_map(&cfg.par, &blocks, |i, block| {
            decompose_block(block, cfg, cfg.seed.wrapping_add((start + i) as u64))
        })
        .map_err(TwoPcpError::from)?;
        drop(blocks);
        for (off, (model, fit)) in results.into_iter().enumerate() {
            u_norm_sq.push(model.norm_sq());
            block_fits.push(fit);
            for (mode, factor) in model.factors.into_iter().enumerate() {
                factor_inputs.push(((start + off) as u64, mode as u16, factor));
            }
        }
        start = end;
    }

    let total_unit_bytes = assemble_units(&grid, cfg, factor_inputs, store)?;
    Ok(Phase1Result {
        grid,
        block_norms_sq,
        u_norm_sq,
        block_fits,
        total_unit_bytes,
        ingested_bytes,
        peak_block_bytes,
    })
}

/// Phase 1 over a dense tensor — a thin adapter over
/// [`run_phase1_source`] with an in-memory source (bit-identical to the
/// historical eager path).
///
/// # Errors
/// Configuration, ALS or storage failures.
pub fn run_phase1_dense<S: UnitStore>(
    x: &DenseTensor,
    cfg: &TwoPcpConfig,
    store: &mut S,
) -> Result<Phase1Result> {
    let mut src = DenseMemorySource::new(x);
    run_phase1_source(&mut src, cfg, store)
}

/// Phase 1 over a sparse tensor — a thin adapter over
/// [`run_phase1_source`] with an in-memory source (bit-identical to the
/// historical eager path).
///
/// # Errors
/// Configuration, ALS or storage failures.
pub fn run_phase1_sparse<S: UnitStore>(
    x: &SparseTensor,
    cfg: &TwoPcpConfig,
    store: &mut S,
) -> Result<Phase1Result> {
    let mut src = SparseMemorySource::new(x);
    run_phase1_source(&mut src, cfg, store)
}

// ---------------------------------------------------------------------------
// MapReduce path (paper Observation #1)
// ---------------------------------------------------------------------------

/// Per-block output of the Phase-1 reducer.
struct BlockOut {
    block: u64,
    model: CpModel,
    fit: f64,
    norm_sq: f64,
}

/// The paper's Phase-1 job: `map` keys each non-zero by its block id,
/// `reduce` recomposes the sub-tensor and runs PARAFAC on it.
struct Phase1Job<'a> {
    grid: &'a Grid,
    cfg: &'a TwoPcpConfig,
    /// `part_of[mode][global_row] = (partition, local_row)`.
    part_of: Vec<Vec<(u32, u32)>>,
}

impl<'a> Phase1Job<'a> {
    fn new(grid: &'a Grid, cfg: &'a TwoPcpConfig) -> Self {
        let mut part_of = Vec::with_capacity(grid.order());
        for m in 0..grid.order() {
            let mut table = vec![(0u32, 0u32); grid.dims()[m]];
            for k in 0..grid.parts()[m] {
                let r = grid.part_range(m, k);
                for (off, slot) in table[r].iter_mut().enumerate() {
                    *slot = (k as u32, off as u32);
                }
            }
            part_of.push(table);
        }
        Phase1Job { grid, cfg, part_of }
    }
}

impl MapReduceJob for Phase1Job<'_> {
    /// One tensor non-zero: global coordinates plus value.
    type Input = (Vec<u32>, f64);
    /// Linear block id `b`.
    type Key = u64;
    /// Block-local coordinates plus value.
    type Value = (Vec<u32>, f64);
    type Output = BlockOut;

    fn map(&self, (coords, v): Self::Input, emit: &mut dyn FnMut(u64, (Vec<u32>, f64))) {
        let mut block = 0u64;
        let mut local = Vec::with_capacity(coords.len());
        for (m, &c) in coords.iter().enumerate() {
            let (k, off) = self.part_of[m][c as usize];
            block = block * self.grid.parts()[m] as u64 + u64::from(k);
            local.push(off);
        }
        emit(block, (local, v));
    }

    fn reduce(&self, block: u64, values: Vec<(Vec<u32>, f64)>, emit: &mut dyn FnMut(BlockOut)) {
        let coords = self.grid.block_coords(block as usize);
        let dims = self.grid.block_dims(&coords);
        let mut builder = SparseBuilder::new(&dims);
        let mut norm_sq = 0.0;
        let mut idx = vec![0usize; dims.len()];
        for (local, v) in values {
            for (slot, c) in idx.iter_mut().zip(&local) {
                *slot = *c as usize;
            }
            builder.push(&idx, v);
            norm_sq += v * v;
        }
        let tensor = builder.build();
        let opts = als_options(self.cfg, self.cfg.seed.wrapping_add(block));
        match cp_als_sparse(&tensor, &opts) {
            Ok(report) => {
                let mut model = report.model;
                balance_weights(&mut model);
                emit(BlockOut {
                    block,
                    model,
                    fit: report.final_fit,
                    norm_sq,
                });
            }
            Err(_) => {
                // An unsolvable block degrades to zero factors rather than
                // failing the whole job (mirrors footnote 3's treatment).
                emit(BlockOut {
                    block,
                    model: CpModel::zeros(&dims, self.cfg.rank),
                    fit: 0.0,
                    norm_sq,
                });
            }
        }
    }
}

/// Phase 1 executed as a MapReduce job over the tensor's non-zeros —
/// the paper's distributed formulation, runnable on the in-process engine.
/// A thin adapter over [`run_phase1_mapreduce_source`].
///
/// # Errors
/// Configuration, MapReduce or storage failures.
pub fn run_phase1_mapreduce<S: UnitStore>(
    x: &SparseTensor,
    cfg: &TwoPcpConfig,
    store: &mut S,
    mr_dir: &Path,
    counters: &JobCounters,
) -> Result<Phase1Result> {
    let mut src = SparseMemorySource::new(x);
    run_phase1_mapreduce_source(&mut src, cfg, store, mr_dir, counters)
}

/// The MapReduce Phase 1 fed from a streaming [`BlockSource`]: blocks are
/// pulled one at a time and flattened into the `⟨coords, value⟩` records
/// the paper's mapper consumes (dense blocks contribute their non-zero
/// cells, mirroring the COO view); unit assembly then runs through the
/// shared shard-by-shard aggregation job.
///
/// **Memory note:** unlike [`run_phase1_source`], this path materialises
/// the full COO record set as mapper input (the in-process engine takes a
/// `Vec`; a real cluster would stream splits from DFS), so its footprint
/// is O(nnz), not O(largest block) — [`Phase1Result::peak_block_bytes`]
/// here reports only block-level residency during ingest. Use the
/// in-process streaming path for tensors that do not fit in memory.
///
/// # Errors
/// Source, configuration, MapReduce or storage failures.
pub fn run_phase1_mapreduce_source<S: UnitStore>(
    src: &mut dyn BlockSource,
    cfg: &TwoPcpConfig,
    store: &mut S,
    mr_dir: &Path,
    counters: &JobCounters,
) -> Result<Phase1Result> {
    let grid = grid_for(cfg, src.dims())?;
    let nblocks = grid.num_blocks();

    let mut inputs: Vec<(Vec<u32>, f64)> = Vec::new();
    let mut ingested_bytes = 0u64;
    let mut peak_block_bytes = 0u64;
    for lin in 0..nblocks {
        let coords = grid.block_coords(lin);
        let offsets: Vec<u32> = grid
            .block_ranges(&coords)
            .iter()
            .map(|r| r.start as u32)
            .collect();
        let block = src.load_block(&grid, lin)?;
        let bytes = block.payload_bytes() as u64;
        ingested_bytes += bytes;
        peak_block_bytes = peak_block_bytes.max(bytes);
        let mut push = |local: &[u32], v: f64| {
            let global: Vec<u32> = local.iter().zip(&offsets).map(|(&c, &o)| c + o).collect();
            inputs.push((global, v));
        };
        match block {
            Block::Sparse(b) => b.for_each_entry(|idx, v| push(idx, v)),
            Block::Dense(b) => {
                // Mirror `SparseTensor::from_dense(x, 0.0)` blockwise: the
                // non-zero cells in local row-major order.
                SparseTensor::from_dense(&b, 0.0).for_each_entry(|idx, v| push(idx, v));
            }
        }
    }

    let job = Phase1Job::new(&grid, cfg);
    let mut mr_cfg = MrConfig::new(mr_dir);
    // The substrate draws its mapper chunking and its mapper/reducer
    // concurrency from the same shared thread budget as the in-process
    // paths (bucket structure stays at the engine default).
    mr_cfg.num_mappers = cfg.par.threads();
    mr_cfg.par = cfg.par;
    let outputs = run_job(&job, inputs, &mr_cfg, counters)?;

    // Fill in results; blocks with no non-zeros never reach a reducer.
    let mut models: Vec<Option<CpModel>> = (0..nblocks).map(|_| None).collect();
    let mut block_fits = vec![1.0f64; nblocks];
    let mut block_norms_sq = vec![0.0f64; nblocks];
    for out in outputs {
        let b = out.block as usize;
        block_fits[b] = out.fit;
        block_norms_sq[b] = out.norm_sq;
        models[b] = Some(out.model);
    }
    let models: Vec<CpModel> = models
        .into_iter()
        .enumerate()
        .map(|(b, m)| {
            m.unwrap_or_else(|| CpModel::zeros(&grid.block_dims(&grid.block_coords(b)), cfg.rank))
        })
        .collect();

    let u_norm_sq: Vec<f64> = models.iter().map(CpModel::norm_sq).collect();
    let mut factor_inputs: Vec<(u64, u16, Mat)> = Vec::with_capacity(nblocks * grid.order());
    for (lin, model) in models.into_iter().enumerate() {
        for (mode, factor) in model.factors.into_iter().enumerate() {
            factor_inputs.push((lin as u64, mode as u16, factor));
        }
    }
    let total_unit_bytes = assemble_units(&grid, cfg, factor_inputs, store)?;
    Ok(Phase1Result {
        grid,
        block_norms_sq,
        u_norm_sq,
        block_fits,
        total_unit_bytes,
        ingested_bytes,
        peak_block_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_storage::{MemStore, ShardedStore};

    fn low_rank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        CpModel::new(vec![1.0; f], factors)
            .unwrap()
            .reconstruct_dense()
    }

    fn cfg(rank: usize, parts: Vec<usize>) -> TwoPcpConfig {
        TwoPcpConfig::new(rank).parts(parts)
    }

    #[test]
    fn dense_phase1_writes_all_units() {
        let x = low_rank(&[8, 8, 8], 2, 1);
        let cfg = cfg(2, vec![2]);
        let mut store = MemStore::new();
        let result = run_phase1_dense(&x, &cfg, &mut store).unwrap();
        assert_eq!(result.grid.num_units(), 6);
        assert_eq!(store.len(), 6);
        for lin in 0..6 {
            let unit = UnitId::from_linear(&result.grid, lin);
            let data = store.read(unit).unwrap();
            assert_eq!(data.factor.shape(), (4, 2));
            assert_eq!(data.sub_factors.len(), 4, "slab of a 2x2x2 grid");
        }
        // Unit bytes match the paper's formula: per mode-partition
        // (4·2)·(1 + 4)·8 bytes; 6 units total.
        assert_eq!(result.total_unit_bytes, 6 * (4 * 2) * 5 * 8);
        // The whole tensor streamed through, one batch at a time.
        assert_eq!(result.ingested_bytes, (8 * 8 * 8 * 8) as u64);
        assert!(result.peak_block_bytes >= (4 * 4 * 4 * 8) as u64);
    }

    #[test]
    fn dense_phase1_blocks_fit_well() {
        let x = low_rank(&[8, 8, 8], 2, 2);
        let cfg = TwoPcpConfig::new(3).parts(vec![2]);
        let mut store = MemStore::new();
        let result = run_phase1_dense(&x, &cfg, &mut store).unwrap();
        for (b, fit) in result.block_fits.iter().enumerate() {
            assert!(*fit > 0.98, "block {b} fit {fit}");
        }
        // ‖X̂₁‖ ≈ ‖X‖ when blocks fit well.
        let total_u: f64 = result.u_norm_sq.iter().sum();
        let total_x: f64 = result.block_norms_sq.iter().sum();
        assert!((total_u - total_x).abs() / total_x < 0.05);
    }

    #[test]
    fn serial_streaming_residency_is_one_block() {
        let x = low_rank(&[8, 6, 8], 2, 5);
        let cfg = cfg(2, vec![2]).threads(1);
        let mut store = MemStore::new();
        let result = run_phase1_dense(&x, &cfg, &mut store).unwrap();
        // With a serial budget, the batch is one block, so the peak
        // residency is exactly the largest block.
        let largest = result
            .grid
            .iter_blocks()
            .map(|c| result.grid.block_dims(&c).iter().product::<usize>() * 8)
            .max()
            .unwrap() as u64;
        assert_eq!(result.peak_block_bytes, largest);
        assert_eq!(result.ingested_bytes, (x.len() * 8) as u64);
    }

    #[test]
    fn sparse_phase1_handles_empty_blocks() {
        // One populated corner; the rest of the blocks are empty.
        let mut b = SparseBuilder::new(&[8, 8, 8]);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    b.push(&[i, j, k], (1 + i + j + k) as f64);
                }
            }
        }
        let x = b.build();
        let cfg = cfg(2, vec![2]);
        let mut store = MemStore::new();
        let result = run_phase1_sparse(&x, &cfg, &mut store).unwrap();
        // Block (0,0,0) is the only non-empty one.
        assert!(result.block_norms_sq[0] > 0.0);
        assert!(result.block_norms_sq[1..].iter().all(|&n| n == 0.0));
        assert!(result.u_norm_sq[1..].iter().all(|&n| n == 0.0));
        // Empty blocks produce zero sub-factors (footnote 3).
        let unit = store.read(UnitId::new(0, 1)).unwrap();
        for (block, u) in &unit.sub_factors {
            let coords = result.grid.block_coords(*block as usize);
            assert_eq!(coords[0], 1);
            assert!(u.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn mapreduce_phase1_matches_threaded_norms() {
        let x = low_rank(&[6, 6, 6], 2, 3);
        let sparse = SparseTensor::from_dense(&x, 0.0);
        let cfg = cfg(2, vec![2]);

        let mut store_a = MemStore::new();
        let threaded = run_phase1_sparse(&sparse, &cfg, &mut store_a).unwrap();

        let dir = std::env::temp_dir().join(format!("tpcp_p1mr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let counters = JobCounters::new();
        let mut store_b = MemStore::new();
        let mr = run_phase1_mapreduce(&sparse, &cfg, &mut store_b, &dir, &counters).unwrap();

        // Same per-block ALS seeds ⇒ identical block norms and fits.
        assert_eq!(threaded.block_norms_sq, mr.block_norms_sq);
        for (a, b) in threaded.block_fits.iter().zip(&mr.block_fits) {
            assert!((a - b).abs() < 1e-9);
        }
        let s = counters.snapshot();
        assert_eq!(s.map_input_records, sparse.nnz() as u64);
        assert_eq!(s.reduce_groups, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_store_receives_identical_units() {
        let x = low_rank(&[8, 8, 8], 2, 7);
        let cfg = cfg(2, vec![2]);
        let mut single = MemStore::new();
        let mut sharded = ShardedStore::mem(3);
        let a = run_phase1_dense(&x, &cfg, &mut single).unwrap();
        let b = run_phase1_dense(&x, &cfg, &mut sharded).unwrap();
        assert_eq!(a.block_fits, b.block_fits);
        assert_eq!(a.u_norm_sq, b.u_norm_sq);
        assert_eq!(a.total_unit_bytes, b.total_unit_bytes);
        for lin in 0..a.grid.num_units() {
            let unit = UnitId::from_linear(&a.grid, lin);
            assert_eq!(single.read(unit).unwrap(), sharded.read(unit).unwrap());
        }
        // The units actually spread over more than one shard.
        let populated = sharded
            .per_shard_bytes()
            .iter()
            .filter(|(w, _)| *w > 0)
            .count();
        assert!(populated > 1, "expected units on multiple shards");
    }

    #[test]
    fn balance_weights_preserves_reconstruction() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = CpModel::new(
            vec![3.0, 0.5],
            vec![
                random_factor(3, 2, &mut rng),
                random_factor(4, 2, &mut rng),
                random_factor(2, 2, &mut rng),
            ],
        )
        .unwrap();
        let before = model.reconstruct_dense();
        balance_weights(&mut model);
        assert!(model.weights.iter().all(|&w| w == 1.0));
        let after = model.reconstruct_dense();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        // Factor column norms are balanced across modes.
        let n0 = model.factors[0].column_norms();
        let n1 = model.factors[1].column_norms();
        for (a, b) in n0.iter().zip(&n1) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn random_init_differs_from_slab_mean() {
        let x = low_rank(&[4, 4], 1, 9);
        let mut s1 = MemStore::new();
        let mut s2 = MemStore::new();
        run_phase1_dense(&x, &TwoPcpConfig::new(1).parts(vec![2]), &mut s1).unwrap();
        run_phase1_dense(
            &x,
            &TwoPcpConfig::new(1).parts(vec![2]).init(InitKind::Random),
            &mut s2,
        )
        .unwrap();
        let a = s1.read(UnitId::new(0, 0)).unwrap();
        let b = s2.read(UnitId::new(0, 0)).unwrap();
        assert_ne!(a.factor, b.factor);
        // Sub-factors are identical (same ALS), only the init differs.
        assert_eq!(a.sub_factors, b.sub_factors);
    }

    #[test]
    fn too_many_partitions_is_a_config_error() {
        let x = low_rank(&[3, 3], 1, 0);
        let mut store = MemStore::new();
        let err =
            run_phase1_dense(&x, &TwoPcpConfig::new(1).parts(vec![4]), &mut store).unwrap_err();
        assert!(matches!(err, TwoPcpError::Config { .. }));
    }
}
