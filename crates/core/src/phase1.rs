//! Phase 1: independent (parallel) decomposition of every block.
//!
//! Each sub-tensor `X_k` is decomposed with standard CP-ALS into rank-`F`
//! sub-factors `U(1)_k … U(N)_k` (paper §IV, Observation #1). Three
//! execution paths are provided:
//!
//! * [`run_phase1_dense`] / [`run_phase1_sparse`] — in-process parallel
//!   workers over split blocks (the paper's "strong configuration" without
//!   the cluster);
//! * [`run_phase1_mapreduce`] — the paper's MapReduce formulation, mapping
//!   `⟨b, i, j, k, X(i,j,k)⟩ on b` and decomposing each block in a reducer,
//!   running on the [`tpcp_mapreduce`] substrate.
//!
//! All paths end by assembling the per-mode *data-access units*
//! (`A(i)(kᵢ)` + slab sub-factors) and writing them to the unit store that
//! Phase 2 will refine against.

use crate::config::{InitKind, TwoPcpConfig};
use crate::{Result, TwoPcpError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use tpcp_cp::{cp_als_dense, cp_als_sparse, AlsOptions, CpModel};
use tpcp_linalg::Mat;
use tpcp_mapreduce::{run_job, JobCounters, MapReduceJob, MrConfig};
use tpcp_par::{par_map, ParConfig};
use tpcp_partition::{split_dense, split_sparse, Grid};
use tpcp_schedule::UnitId;
use tpcp_storage::{UnitData, UnitStore};
use tpcp_tensor::{random_factor, DenseTensor, SparseBuilder, SparseTensor};

/// Everything Phase 2 (and the evaluation harness) needs to know about the
/// completed first phase.
#[derive(Clone, Debug)]
pub struct Phase1Result {
    /// The partitioning grid.
    pub grid: Grid,
    /// `‖X_k‖²` per block (enables streaming exact-accuracy computation).
    pub block_norms_sq: Vec<f64>,
    /// `‖X̂₁_k‖²` per block — the Phase-1 reconstruction norms feeding the
    /// Phase-2 surrogate fit.
    pub u_norm_sq: Vec<f64>,
    /// Per-block ALS fit achieved in Phase 1.
    pub block_fits: Vec<f64>,
    /// Total bytes of all data-access units (the paper's `memtotal`,
    /// §IV-A) — the reference the buffer fraction is taken against.
    pub total_unit_bytes: usize,
}

/// Builds the grid after validating partition counts against dimensions.
pub(crate) fn grid_for(cfg: &TwoPcpConfig, dims: &[usize]) -> Result<Grid> {
    let parts = cfg.resolved_parts(dims.len())?;
    for (m, (&p, &d)) in parts.iter().zip(dims).enumerate() {
        if p > d {
            return Err(TwoPcpError::Config {
                reason: format!("mode {m}: {p} partitions exceed dimension {d}"),
            });
        }
    }
    Ok(Grid::new(dims, &parts))
}

fn als_options(cfg: &TwoPcpConfig, block_seed: u64) -> AlsOptions {
    AlsOptions {
        rank: cfg.rank,
        max_iters: cfg.phase1.max_iters,
        tol: cfg.phase1.tol,
        ridge: cfg.ridge,
        seed: block_seed,
        init: None,
        // Block workers already occupy the budget; the kernels inside one
        // block stay serial rather than oversubscribing the machine.
        par: ParConfig::serial(),
    }
}

/// Spreads the component weights evenly over the modes
/// (`λ^{1/N}` per factor), so the block model becomes the identity-core
/// form `X_k ≈ I ×₁ U(1)_k ×₂ … ×_N U(N)_k` of paper eq. 1.
fn balance_weights(model: &mut CpModel) {
    let order = model.order();
    if order == 0 {
        return;
    }
    model.normalize();
    let root: Vec<f64> = model
        .weights
        .iter()
        .map(|&l| {
            if l > 0.0 {
                l.powf(1.0 / order as f64)
            } else {
                0.0
            }
        })
        .collect();
    for factor in &mut model.factors {
        factor.scale_columns(&root);
    }
    model.weights.fill(1.0);
}

/// Writes the per-mode data-access units for the decomposed blocks and
/// returns `(u_norm_sq, total_unit_bytes)`.
fn assemble_units<S: UnitStore>(
    grid: &Grid,
    cfg: &TwoPcpConfig,
    models: &[CpModel],
    store: &mut S,
) -> Result<(Vec<f64>, usize)> {
    debug_assert_eq!(models.len(), grid.num_blocks());
    let u_norm_sq: Vec<f64> = models.iter().map(CpModel::norm_sq).collect();
    let mut total_bytes = 0usize;
    for mode in 0..grid.order() {
        for part in 0..grid.parts()[mode] {
            let rows = grid.part_len(mode, part);
            let slab: Vec<usize> = grid.slab(mode, part).collect();
            let sub_factors: Vec<(u64, Mat)> = slab
                .iter()
                .map(|&l| (l as u64, models[l].factors[mode].clone()))
                .collect();
            let factor = match cfg.init {
                InitKind::Random => {
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ ((mode as u64) << 32) ^ part as u64);
                    random_factor(rows, cfg.rank, &mut rng)
                }
                InitKind::SlabMean => {
                    let mut acc = Mat::zeros(rows, cfg.rank);
                    for (_, u) in &sub_factors {
                        acc.add_assign(u).map_err(TwoPcpError::from)?;
                    }
                    acc.scale(1.0 / sub_factors.len().max(1) as f64);
                    acc
                }
            };
            let data = UnitData {
                unit: UnitId::new(mode, part),
                factor,
                sub_factors,
            };
            total_bytes += data.payload_bytes();
            store.write(&data)?;
        }
    }
    Ok((u_norm_sq, total_bytes))
}

/// Phase 1 over a dense tensor with in-process parallel block workers.
///
/// # Errors
/// Configuration, ALS or storage failures.
pub fn run_phase1_dense<S: UnitStore>(
    x: &DenseTensor,
    cfg: &TwoPcpConfig,
    store: &mut S,
) -> Result<Phase1Result> {
    let grid = grid_for(cfg, x.dims())?;
    let blocks = split_dense(x, &grid);
    let block_norms_sq: Vec<f64> = blocks.iter().map(DenseTensor::fro_norm_sq).collect();
    let results = par_map(&cfg.par, &blocks, |i, block| {
        let report = cp_als_dense(block, &als_options(cfg, cfg.seed.wrapping_add(i as u64)))?;
        let mut model = report.model;
        balance_weights(&mut model);
        Ok((model, report.final_fit))
    })
    .map_err(TwoPcpError::from)?;
    finish_phase1(grid, cfg, results, block_norms_sq, store)
}

/// Phase 1 over a sparse tensor with in-process parallel block workers.
///
/// # Errors
/// Configuration, ALS or storage failures.
pub fn run_phase1_sparse<S: UnitStore>(
    x: &SparseTensor,
    cfg: &TwoPcpConfig,
    store: &mut S,
) -> Result<Phase1Result> {
    let grid = grid_for(cfg, x.dims())?;
    let blocks = split_sparse(x, &grid);
    let block_norms_sq: Vec<f64> = blocks.iter().map(SparseTensor::fro_norm_sq).collect();
    let results = par_map(&cfg.par, &blocks, |i, block| {
        if block.is_empty() {
            // Footnote 3: empty sub-tensors get zero factors.
            return Ok((CpModel::zeros(block.dims(), cfg.rank), 1.0));
        }
        let report = cp_als_sparse(block, &als_options(cfg, cfg.seed.wrapping_add(i as u64)))?;
        let mut model = report.model;
        balance_weights(&mut model);
        Ok((model, report.final_fit))
    })
    .map_err(TwoPcpError::from)?;
    finish_phase1(grid, cfg, results, block_norms_sq, store)
}

fn finish_phase1<S: UnitStore>(
    grid: Grid,
    cfg: &TwoPcpConfig,
    results: Vec<(CpModel, f64)>,
    block_norms_sq: Vec<f64>,
    store: &mut S,
) -> Result<Phase1Result> {
    let (models, block_fits): (Vec<CpModel>, Vec<f64>) = results.into_iter().unzip();
    let (u_norm_sq, total_unit_bytes) = assemble_units(&grid, cfg, &models, store)?;
    Ok(Phase1Result {
        grid,
        block_norms_sq,
        u_norm_sq,
        block_fits,
        total_unit_bytes,
    })
}

// ---------------------------------------------------------------------------
// MapReduce path (paper Observation #1)
// ---------------------------------------------------------------------------

/// Per-block output of the Phase-1 reducer.
struct BlockOut {
    block: u64,
    model: CpModel,
    fit: f64,
    norm_sq: f64,
}

/// The paper's Phase-1 job: `map` keys each non-zero by its block id,
/// `reduce` recomposes the sub-tensor and runs PARAFAC on it.
struct Phase1Job<'a> {
    grid: &'a Grid,
    cfg: &'a TwoPcpConfig,
    /// `part_of[mode][global_row] = (partition, local_row)`.
    part_of: Vec<Vec<(u32, u32)>>,
}

impl<'a> Phase1Job<'a> {
    fn new(grid: &'a Grid, cfg: &'a TwoPcpConfig) -> Self {
        let mut part_of = Vec::with_capacity(grid.order());
        for m in 0..grid.order() {
            let mut table = vec![(0u32, 0u32); grid.dims()[m]];
            for k in 0..grid.parts()[m] {
                let r = grid.part_range(m, k);
                for (off, slot) in table[r].iter_mut().enumerate() {
                    *slot = (k as u32, off as u32);
                }
            }
            part_of.push(table);
        }
        Phase1Job { grid, cfg, part_of }
    }
}

impl MapReduceJob for Phase1Job<'_> {
    /// One tensor non-zero: global coordinates plus value.
    type Input = (Vec<u32>, f64);
    /// Linear block id `b`.
    type Key = u64;
    /// Block-local coordinates plus value.
    type Value = (Vec<u32>, f64);
    type Output = BlockOut;

    fn map(&self, (coords, v): Self::Input, emit: &mut dyn FnMut(u64, (Vec<u32>, f64))) {
        let mut block = 0u64;
        let mut local = Vec::with_capacity(coords.len());
        for (m, &c) in coords.iter().enumerate() {
            let (k, off) = self.part_of[m][c as usize];
            block = block * self.grid.parts()[m] as u64 + u64::from(k);
            local.push(off);
        }
        emit(block, (local, v));
    }

    fn reduce(&self, block: u64, values: Vec<(Vec<u32>, f64)>, emit: &mut dyn FnMut(BlockOut)) {
        let coords = self.grid.block_coords(block as usize);
        let dims = self.grid.block_dims(&coords);
        let mut builder = SparseBuilder::new(&dims);
        let mut norm_sq = 0.0;
        let mut idx = vec![0usize; dims.len()];
        for (local, v) in values {
            for (slot, c) in idx.iter_mut().zip(&local) {
                *slot = *c as usize;
            }
            builder.push(&idx, v);
            norm_sq += v * v;
        }
        let tensor = builder.build();
        let opts = als_options(self.cfg, self.cfg.seed.wrapping_add(block));
        match cp_als_sparse(&tensor, &opts) {
            Ok(report) => {
                let mut model = report.model;
                balance_weights(&mut model);
                emit(BlockOut {
                    block,
                    model,
                    fit: report.final_fit,
                    norm_sq,
                });
            }
            Err(_) => {
                // An unsolvable block degrades to zero factors rather than
                // failing the whole job (mirrors footnote 3's treatment).
                emit(BlockOut {
                    block,
                    model: CpModel::zeros(&dims, self.cfg.rank),
                    fit: 0.0,
                    norm_sq,
                });
            }
        }
    }
}

/// Phase 1 executed as a MapReduce job over the tensor's non-zeros —
/// the paper's distributed formulation, runnable on the in-process engine.
///
/// # Errors
/// Configuration, MapReduce or storage failures.
pub fn run_phase1_mapreduce<S: UnitStore>(
    x: &SparseTensor,
    cfg: &TwoPcpConfig,
    store: &mut S,
    mr_dir: &Path,
    counters: &JobCounters,
) -> Result<Phase1Result> {
    let grid = grid_for(cfg, x.dims())?;

    let mut inputs: Vec<(Vec<u32>, f64)> = Vec::with_capacity(x.nnz());
    x.for_each_entry(|idx, v| inputs.push((idx.to_vec(), v)));

    let job = Phase1Job::new(&grid, cfg);
    let mut mr_cfg = MrConfig::new(mr_dir);
    // The substrate draws its mapper chunking and its mapper/reducer
    // concurrency from the same shared thread budget as the in-process
    // paths (bucket structure stays at the engine default).
    mr_cfg.num_mappers = cfg.par.threads();
    mr_cfg.par = cfg.par;
    let outputs = run_job(&job, inputs, &mr_cfg, counters)?;

    // Fill in results; blocks with no non-zeros never reach a reducer.
    let nblocks = grid.num_blocks();
    let mut models: Vec<Option<CpModel>> = (0..nblocks).map(|_| None).collect();
    let mut block_fits = vec![1.0f64; nblocks];
    let mut block_norms_sq = vec![0.0f64; nblocks];
    for out in outputs {
        let b = out.block as usize;
        block_fits[b] = out.fit;
        block_norms_sq[b] = out.norm_sq;
        models[b] = Some(out.model);
    }
    let models: Vec<CpModel> = models
        .into_iter()
        .enumerate()
        .map(|(b, m)| {
            m.unwrap_or_else(|| CpModel::zeros(&grid.block_dims(&grid.block_coords(b)), cfg.rank))
        })
        .collect();

    let (u_norm_sq, total_unit_bytes) = assemble_units(&grid, cfg, &models, store)?;
    Ok(Phase1Result {
        grid,
        block_norms_sq,
        u_norm_sq,
        block_fits,
        total_unit_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_storage::MemStore;

    fn low_rank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        CpModel::new(vec![1.0; f], factors)
            .unwrap()
            .reconstruct_dense()
    }

    fn cfg(rank: usize, parts: Vec<usize>) -> TwoPcpConfig {
        TwoPcpConfig::new(rank).parts(parts)
    }

    #[test]
    fn dense_phase1_writes_all_units() {
        let x = low_rank(&[8, 8, 8], 2, 1);
        let cfg = cfg(2, vec![2]);
        let mut store = MemStore::new();
        let result = run_phase1_dense(&x, &cfg, &mut store).unwrap();
        assert_eq!(result.grid.num_units(), 6);
        assert_eq!(store.len(), 6);
        for lin in 0..6 {
            let unit = UnitId::from_linear(&result.grid, lin);
            let data = store.read(unit).unwrap();
            assert_eq!(data.factor.shape(), (4, 2));
            assert_eq!(data.sub_factors.len(), 4, "slab of a 2x2x2 grid");
        }
        // Unit bytes match the paper's formula: per mode-partition
        // (4·2)·(1 + 4)·8 bytes; 6 units total.
        assert_eq!(result.total_unit_bytes, 6 * (4 * 2) * 5 * 8);
    }

    #[test]
    fn dense_phase1_blocks_fit_well() {
        let x = low_rank(&[8, 8, 8], 2, 2);
        let cfg = TwoPcpConfig::new(3).parts(vec![2]);
        let mut store = MemStore::new();
        let result = run_phase1_dense(&x, &cfg, &mut store).unwrap();
        for (b, fit) in result.block_fits.iter().enumerate() {
            assert!(*fit > 0.98, "block {b} fit {fit}");
        }
        // ‖X̂₁‖ ≈ ‖X‖ when blocks fit well.
        let total_u: f64 = result.u_norm_sq.iter().sum();
        let total_x: f64 = result.block_norms_sq.iter().sum();
        assert!((total_u - total_x).abs() / total_x < 0.05);
    }

    #[test]
    fn sparse_phase1_handles_empty_blocks() {
        // One populated corner; the rest of the blocks are empty.
        let mut b = SparseBuilder::new(&[8, 8, 8]);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    b.push(&[i, j, k], (1 + i + j + k) as f64);
                }
            }
        }
        let x = b.build();
        let cfg = cfg(2, vec![2]);
        let mut store = MemStore::new();
        let result = run_phase1_sparse(&x, &cfg, &mut store).unwrap();
        // Block (0,0,0) is the only non-empty one.
        assert!(result.block_norms_sq[0] > 0.0);
        assert!(result.block_norms_sq[1..].iter().all(|&n| n == 0.0));
        assert!(result.u_norm_sq[1..].iter().all(|&n| n == 0.0));
        // Empty blocks produce zero sub-factors (footnote 3).
        let unit = store.read(UnitId::new(0, 1)).unwrap();
        for (block, u) in &unit.sub_factors {
            let coords = result.grid.block_coords(*block as usize);
            assert_eq!(coords[0], 1);
            assert!(u.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn mapreduce_phase1_matches_threaded_norms() {
        let x = low_rank(&[6, 6, 6], 2, 3);
        let sparse = SparseTensor::from_dense(&x, 0.0);
        let cfg = cfg(2, vec![2]);

        let mut store_a = MemStore::new();
        let threaded = run_phase1_sparse(&sparse, &cfg, &mut store_a).unwrap();

        let dir = std::env::temp_dir().join(format!("tpcp_p1mr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let counters = JobCounters::new();
        let mut store_b = MemStore::new();
        let mr = run_phase1_mapreduce(&sparse, &cfg, &mut store_b, &dir, &counters).unwrap();

        // Same per-block ALS seeds ⇒ identical block norms and fits.
        assert_eq!(threaded.block_norms_sq, mr.block_norms_sq);
        for (a, b) in threaded.block_fits.iter().zip(&mr.block_fits) {
            assert!((a - b).abs() < 1e-9);
        }
        let s = counters.snapshot();
        assert_eq!(s.map_input_records, sparse.nnz() as u64);
        assert_eq!(s.reduce_groups, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn balance_weights_preserves_reconstruction() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = CpModel::new(
            vec![3.0, 0.5],
            vec![
                random_factor(3, 2, &mut rng),
                random_factor(4, 2, &mut rng),
                random_factor(2, 2, &mut rng),
            ],
        )
        .unwrap();
        let before = model.reconstruct_dense();
        balance_weights(&mut model);
        assert!(model.weights.iter().all(|&w| w == 1.0));
        let after = model.reconstruct_dense();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        // Factor column norms are balanced across modes.
        let n0 = model.factors[0].column_norms();
        let n1 = model.factors[1].column_norms();
        for (a, b) in n0.iter().zip(&n1) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn random_init_differs_from_slab_mean() {
        let x = low_rank(&[4, 4], 1, 9);
        let mut s1 = MemStore::new();
        let mut s2 = MemStore::new();
        run_phase1_dense(&x, &TwoPcpConfig::new(1).parts(vec![2]), &mut s1).unwrap();
        run_phase1_dense(
            &x,
            &TwoPcpConfig::new(1).parts(vec![2]).init(InitKind::Random),
            &mut s2,
        )
        .unwrap();
        let a = s1.read(UnitId::new(0, 0)).unwrap();
        let b = s2.read(UnitId::new(0, 0)).unwrap();
        assert_ne!(a.factor, b.factor);
        // Sub-factors are identical (same ALS), only the init differs.
        assert_eq!(a.sub_factors, b.sub_factors);
    }

    #[test]
    fn too_many_partitions_is_a_config_error() {
        let x = low_rank(&[3, 3], 1, 0);
        let mut store = MemStore::new();
        let err =
            run_phase1_dense(&x, &TwoPcpConfig::new(1).parts(vec![4]), &mut store).unwrap_err();
        assert!(matches!(err, TwoPcpError::Config { .. }));
    }
}
