//! Configuration for the two-phase pipeline.

use crate::{Result, TwoPcpError};
use std::path::PathBuf;
use tpcp_cp::CompressOptions;
use tpcp_linalg::{KernelKind, KERNEL_ENV_VAR};
use tpcp_par::ParConfig;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::{PolicyKind, PrefetchConfig};

/// An invalid configuration detected by a builder's `build()`.
///
/// Converts into [`TwoPcpError::Config`] at the pipeline boundary, so
/// `?` works in driver code while builder call sites keep the precise
/// type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// What was wrong with the configuration.
    pub reason: String,
}

impl ConfigError {
    fn new(reason: impl Into<String>) -> Self {
        ConfigError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid config: {}", self.reason)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for TwoPcpError {
    fn from(e: ConfigError) -> Self {
        TwoPcpError::Config { reason: e.reason }
    }
}

/// Name of the environment variable giving `tpcp-serve` / `tpcp-query`
/// their default address.
pub const SERVE_ADDR_ENV_VAR: &str = "TPCP_SERVE_ADDR";

/// Every `TPCP_*` environment override, parsed once.
///
/// The individual crates own their variables' grammar ([`ParConfig`],
/// [`PrefetchConfig`], [`tpcp_storage::shards_auto`],
/// [`tpcp_storage::mmap_auto`]); this type records *which* variables are
/// actually set and their parsed values, and [`TwoPcpConfig::new`] is
/// the single place in the driver that applies them — everything built
/// on a config (examples, tests, the serving daemon) inherits the
/// environment through it.
#[derive(Clone, Debug, Default)]
pub struct EnvOverrides {
    /// `TPCP_THREADS` → shared worker-thread budget.
    pub par: Option<ParConfig>,
    /// `TPCP_PREFETCH` → prefetch pipeline depth / off.
    pub prefetch: Option<PrefetchConfig>,
    /// `TPCP_SHARDS` → unit-store shard count.
    pub shards: Option<usize>,
    /// `TPCP_MMAP` → zero-copy page read path.
    pub mmap: Option<bool>,
    /// `TPCP_KERNEL` → compute-kernel backend.
    pub kernel: Option<KernelKind>,
    /// `TPCP_DIMTREE` → dimension-tree MTTKRP path in the Phase-1 ALS.
    pub dimtree: Option<bool>,
    /// `TPCP_COMPRESS` → compress-then-decompose pipeline in the driver.
    pub compress: Option<bool>,
    /// `TPCP_SERVE_ADDR` → serving daemon listen address.
    pub serve_addr: Option<String>,
}

impl EnvOverrides {
    /// Reads every override from the process environment. Variables that
    /// are unset stay `None`; set variables parse under their owning
    /// crate's rules (malformed values fall back to that crate's
    /// defaults, exactly as before this type existed).
    pub fn from_env() -> Self {
        let set = |name: &str| std::env::var_os(name).is_some();
        EnvOverrides {
            par: set(tpcp_par::THREADS_ENV_VAR).then(ParConfig::auto),
            prefetch: set(tpcp_storage::PREFETCH_ENV_VAR).then(PrefetchConfig::auto),
            shards: set(tpcp_storage::SHARDS_ENV_VAR).then(tpcp_storage::shards_auto),
            mmap: set(tpcp_storage::MMAP_ENV_VAR).then(tpcp_storage::mmap_auto),
            kernel: set(KERNEL_ENV_VAR).then(KernelKind::auto),
            dimtree: set(tpcp_cp::DIMTREE_ENV_VAR).then(tpcp_cp::dimtree_auto),
            compress: set(tpcp_cp::COMPRESS_ENV_VAR).then(tpcp_cp::compress_auto),
            serve_addr: std::env::var(SERVE_ADDR_ENV_VAR).ok(),
        }
    }

    /// Applies the set overrides to `config`, leaving unset knobs alone.
    #[must_use]
    pub fn apply(&self, mut config: TwoPcpConfig) -> TwoPcpConfig {
        if let Some(par) = self.par {
            config.par = par;
        }
        if let Some(prefetch) = self.prefetch {
            config.prefetch = prefetch;
        }
        if let Some(shards) = self.shards {
            config.shards = shards;
        }
        if let Some(mmap) = self.mmap {
            config.mmap = mmap;
        }
        if let Some(kernel) = self.kernel {
            config.kernel = kernel;
        }
        if let Some(dimtree) = self.dimtree {
            config.dimtree = dimtree;
        }
        match self.compress {
            // `TPCP_COMPRESS=1` turns the pipeline on with default options
            // but never clobbers explicitly configured knobs.
            Some(true) if config.compress.is_none() => {
                config.compress = Some(CompressOptions::default());
            }
            Some(false) => config.compress = None,
            _ => {}
        }
        config
    }
}

/// How the global sub-factors `A(i)(kᵢ)` are initialised before Phase 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitKind {
    /// Mean of the mode-`i` sub-factors across the slab — aligns `A` with
    /// the Phase-1 component space (default).
    SlabMean,
    /// Seeded random initialisation.
    Random,
}

/// Options for Phase 1 (per-block CP-ALS).
///
/// The worker-thread budget moved to [`TwoPcpConfig::par`], so Phase 1,
/// Phase 2 and the kernels beneath them share one budget.
#[derive(Clone, Debug)]
pub struct Phase1Options {
    /// ALS iterations per block.
    pub max_iters: usize,
    /// ALS convergence tolerance per block.
    pub tol: f64,
    /// Route Phase 1 through the MapReduce substrate (paper Observation #1)
    /// instead of in-process threads. Requires `work_dir`.
    pub use_mapreduce: bool,
}

impl Phase1Options {
    /// Sets the per-block ALS iteration budget.
    #[must_use]
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the per-block ALS convergence tolerance.
    #[must_use]
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Routes Phase 1 through the MapReduce substrate.
    #[must_use]
    pub fn mapreduce(mut self, use_mapreduce: bool) -> Self {
        self.use_mapreduce = use_mapreduce;
        self
    }
}

impl Default for Phase1Options {
    fn default() -> Self {
        Phase1Options {
            max_iters: 25,
            tol: 1e-4,
            use_mapreduce: false,
        }
    }
}

/// Full configuration of a 2PCP run (paper Table III's parameter space).
#[derive(Clone, Debug)]
pub struct TwoPcpConfig {
    /// Decomposition rank `F`.
    pub rank: usize,
    /// Partition counts per mode (`K₁ … K_N`); a single-element vector is
    /// broadcast to every mode.
    pub parts: Vec<usize>,
    /// Phase-2 update schedule (MC / FO / ZO / HO, plus the GO extension).
    pub schedule: ScheduleKind,
    /// Buffer replacement policy (LRU / MRU / FOR).
    pub policy: PolicyKind,
    /// Buffer capacity as a fraction of the total space requirement
    /// (paper: 1/3, 1/2, 2/3). Values ≥ 1 keep everything resident.
    pub buffer_fraction: f64,
    /// Maximum number of virtual iterations in Phase 2 (paper: 100/200).
    pub max_virtual_iters: usize,
    /// Stop when the per-virtual-iteration accuracy improvement drops
    /// below this (paper: 10⁻²).
    pub tol: f64,
    /// Ridge for the `T·S⁻¹` solves.
    pub ridge: f64,
    /// Seed for all randomised pieces (block ALS init etc.).
    pub seed: u64,
    /// Where unit pages live; `None` = in-memory store (testing / small
    /// runs), `Some(dir)` = disk store (the out-of-core configuration).
    pub work_dir: Option<PathBuf>,
    /// Initialisation of the global sub-factors.
    pub init: InitKind,
    /// Phase-1 options.
    pub phase1: Phase1Options,
    /// The shared thread budget: Phase-1 block workers, Phase-2 cache
    /// refreshes and every MTTKRP/matmul kernel underneath draw from this
    /// one [`ParConfig`] (defaults to [`ParConfig::auto`], i.e. the
    /// `TPCP_THREADS` override or all available cores). Parallel execution
    /// is deterministic — results are bit-identical for any budget.
    pub par: ParConfig,
    /// The Phase-2 asynchronous prefetch pipeline: a background worker
    /// walks the deterministic update schedule ahead of the refiner and
    /// stages upcoming units, overlapping disk reads with compute
    /// (defaults to [`PrefetchConfig::auto`], i.e. the `TPCP_PREFETCH`
    /// override or an enabled depth-4 pipeline). Prefetch moves bytes,
    /// never values — fit traces, factors and swap counts are
    /// bit-identical with the pipeline on or off.
    pub prefetch: PrefetchConfig,
    /// Number of unit-store shards the driver routes data-access units
    /// across ([`tpcp_storage::ShardedStore`]): Phase 1 emits units
    /// shard-by-shard and Phase 2 reads route transparently (defaults to
    /// [`tpcp_storage::shards_auto`], i.e. the `TPCP_SHARDS` override or
    /// a single unsharded store). Sharding moves bytes, never values —
    /// factors, fits and swap counts are bit-identical at any shard
    /// count.
    pub shards: usize,
    /// The zero-copy page read path: with mmap on, the on-disk unit
    /// stores decode pages directly from memory maps — no scratch-buffer
    /// copy — and hand the buffer pool borrowed page slabs, so a resident
    /// unit materialises with exactly one copy (map → `Mat`). Defaults to
    /// [`tpcp_storage::mmap_auto`], i.e. the `TPCP_MMAP` override or off.
    /// Mmap moves bytes, never values — factors, fits and swap counts are
    /// bit-identical with the flag on or off; irrelevant for in-memory
    /// stores (`work_dir: None`).
    pub mmap: bool,
    /// The compute-kernel backend for every dense product under both
    /// phases (matmul/gram/MTTKRP): the reference scalar loops, the
    /// register-blocked tiled microkernels, or automatic selection
    /// (defaults to [`KernelKind::Auto`], i.e. the `TPCP_KERNEL` override
    /// or tiled). Backends are bit-identical — factors, fits and swap
    /// counts never depend on this knob; it trades speed only.
    pub kernel: KernelKind,
    /// Dimension-tree MTTKRP in the Phase-1 per-block ALS: reuse partial
    /// contractions across the modes of each sweep (~2× fewer flops for
    /// order ≥ 4). Unlike `kernel` and `mmap` this knob *does* change the
    /// floating-point contraction order, so Phase-1 factors are
    /// tolerance- rather than bitwise-equivalent to the per-mode path
    /// (`docs/dimtree.md`); swap counts and the Phase-2 schedule are
    /// unaffected. Defaults to [`tpcp_cp::dimtree_auto`], i.e. the
    /// `TPCP_DIMTREE` override or off.
    pub dimtree: bool,
    /// Compress-then-decompose (`tpcp-compress`): stream per-mode Tucker
    /// bases, run CP on the small core, expand, then polish against the
    /// original tensor. `Some(options)` replaces the two-phase pipeline
    /// with the compression pipeline; `None` (default) leaves the driver
    /// untouched — the default path is bitwise identical to a build
    /// without this knob. `TPCP_COMPRESS` enables default options via
    /// [`EnvOverrides`]. Best on low-multilinear-rank tensors; see
    /// `docs/compress.md` for when not to use it.
    pub compress: Option<CompressOptions>,
}

impl TwoPcpConfig {
    /// A configuration with the paper's preferred defaults: Hilbert-order
    /// schedule, forward-looking replacement, 2 partitions per mode.
    ///
    /// This is the single place the `TPCP_*` environment overrides enter
    /// the driver: env-free defaults first, then
    /// [`EnvOverrides::from_env`] on top.
    pub fn new(rank: usize) -> Self {
        EnvOverrides::from_env().apply(TwoPcpConfig {
            rank,
            parts: vec![2],
            schedule: ScheduleKind::HilbertOrder,
            policy: PolicyKind::Forward,
            buffer_fraction: 1.0,
            max_virtual_iters: 100,
            tol: 1e-2,
            ridge: 1e-9,
            seed: 0,
            work_dir: None,
            init: InitKind::SlabMean,
            phase1: Phase1Options::default(),
            par: ParConfig::hardware(),
            prefetch: PrefetchConfig::default(),
            shards: 1,
            mmap: false,
            kernel: KernelKind::Auto,
            dimtree: false,
            compress: None,
        })
    }

    /// A validating builder over the same defaults as
    /// [`TwoPcpConfig::new`] (environment overrides included).
    pub fn builder() -> TwoPcpConfigBuilder {
        TwoPcpConfigBuilder {
            config: TwoPcpConfig::new(0),
            rank_set: false,
            dimtree_set: false,
            compress_set: false,
        }
    }

    /// Sets the per-mode partition counts.
    pub fn parts(mut self, parts: Vec<usize>) -> Self {
        self.parts = parts;
        self
    }

    /// Sets the Phase-2 update schedule.
    pub fn schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the buffer replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the buffer size as a fraction of the total space requirement.
    pub fn buffer_fraction(mut self, fraction: f64) -> Self {
        self.buffer_fraction = fraction;
        self
    }

    /// Sets the virtual-iteration budget.
    pub fn max_virtual_iters(mut self, iters: usize) -> Self {
        self.max_virtual_iters = iters;
        self
    }

    /// Sets the Phase-2 stopping tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses an on-disk unit store rooted at `dir`.
    pub fn work_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.work_dir = Some(dir.into());
        self
    }

    /// Sets the sub-factor initialisation strategy.
    pub fn init(mut self, init: InitKind) -> Self {
        self.init = init;
        self
    }

    /// Sets the Phase-1 options.
    pub fn phase1(mut self, phase1: Phase1Options) -> Self {
        self.phase1 = phase1;
        self
    }

    /// Sets the shared worker-thread budget (`0` = decide automatically).
    pub fn threads(mut self, threads: usize) -> Self {
        self.par = ParConfig::with_threads(threads);
        self
    }

    /// Sets the shared thread budget from an explicit [`ParConfig`].
    pub fn par(mut self, par: ParConfig) -> Self {
        self.par = par;
        self
    }

    /// Sets the Phase-2 prefetch pipeline configuration.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the prefetch pipeline depth (`0` disables the pipeline).
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch = PrefetchConfig::with_depth(depth);
        self
    }

    /// Sets the unit-store shard count (`1` = unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Switches the zero-copy (mmap-backed) page read path on or off.
    pub fn mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Sets the compute-kernel backend (bit-identical across backends;
    /// trades speed only).
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Switches the Phase-1 dimension-tree MTTKRP path on or off
    /// (tolerance-, not bitwise-, equivalent to the per-mode path).
    pub fn dimtree(mut self, dimtree: bool) -> Self {
        self.dimtree = dimtree;
        self
    }

    /// Enables compress-then-decompose with explicit [`CompressOptions`].
    pub fn compress(mut self, options: CompressOptions) -> Self {
        self.compress = Some(options);
        self
    }

    /// Disables compress-then-decompose (back to the two-phase pipeline).
    pub fn compress_off(mut self) -> Self {
        self.compress = None;
        self
    }

    /// Resolves the partition vector for an order-`n` tensor (broadcasting
    /// a singleton) and validates the configuration.
    ///
    /// # Errors
    /// [`TwoPcpError::Config`] on invalid rank, partitioning or buffer
    /// fraction.
    pub fn resolved_parts(&self, order: usize) -> Result<Vec<usize>> {
        if self.rank == 0 {
            return Err(TwoPcpError::Config {
                reason: "rank must be positive".into(),
            });
        }
        if self.buffer_fraction <= 0.0 {
            return Err(TwoPcpError::Config {
                reason: "buffer_fraction must be positive".into(),
            });
        }
        if self.shards == 0 {
            return Err(TwoPcpError::Config {
                reason: "shard count must be positive".into(),
            });
        }
        let parts = if self.parts.len() == 1 {
            vec![self.parts[0]; order]
        } else if self.parts.len() == order {
            self.parts.clone()
        } else {
            return Err(TwoPcpError::Config {
                reason: format!(
                    "{} partition counts for an order-{order} tensor",
                    self.parts.len()
                ),
            });
        };
        if parts.contains(&0) {
            return Err(TwoPcpError::Config {
                reason: "partition counts must be positive".into(),
            });
        }
        Ok(parts)
    }
}

/// Builder for [`TwoPcpConfig`] whose [`build`](TwoPcpConfigBuilder::build)
/// rejects invalid settings up front, instead of deferring every mistake
/// to `resolved_parts` deep inside a run.
#[derive(Clone, Debug)]
pub struct TwoPcpConfigBuilder {
    config: TwoPcpConfig,
    rank_set: bool,
    dimtree_set: bool,
    compress_set: bool,
}

impl TwoPcpConfigBuilder {
    /// Sets the decomposition rank `F` (required).
    pub fn rank(mut self, rank: usize) -> Self {
        self.config.rank = rank;
        self.rank_set = true;
        self
    }

    /// Sets the per-mode partition counts.
    pub fn parts(mut self, parts: Vec<usize>) -> Self {
        self.config = self.config.parts(parts);
        self
    }

    /// Sets the Phase-2 update schedule.
    pub fn schedule(mut self, schedule: ScheduleKind) -> Self {
        self.config = self.config.schedule(schedule);
        self
    }

    /// Sets the buffer replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.config = self.config.policy(policy);
        self
    }

    /// Sets the buffer size as a fraction of the total space requirement.
    pub fn buffer_fraction(mut self, fraction: f64) -> Self {
        self.config = self.config.buffer_fraction(fraction);
        self
    }

    /// Sets the virtual-iteration budget.
    pub fn max_virtual_iters(mut self, iters: usize) -> Self {
        self.config = self.config.max_virtual_iters(iters);
        self
    }

    /// Sets the Phase-2 stopping tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.config = self.config.tol(tol);
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.seed(seed);
        self
    }

    /// Uses an on-disk unit store rooted at `dir`.
    pub fn work_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config = self.config.work_dir(dir);
        self
    }

    /// Sets the sub-factor initialisation strategy.
    pub fn init(mut self, init: InitKind) -> Self {
        self.config = self.config.init(init);
        self
    }

    /// Sets the Phase-1 options.
    pub fn phase1(mut self, phase1: Phase1Options) -> Self {
        self.config = self.config.phase1(phase1);
        self
    }

    /// Sets the shared worker-thread budget (`0` = decide automatically).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config = self.config.threads(threads);
        self
    }

    /// Sets the shared thread budget from an explicit [`ParConfig`].
    pub fn par(mut self, par: ParConfig) -> Self {
        self.config = self.config.par(par);
        self
    }

    /// Sets the Phase-2 prefetch pipeline configuration.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.config = self.config.prefetch(prefetch);
        self
    }

    /// Sets the unit-store shard count (`1` = unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config = self.config.shards(shards);
        self
    }

    /// Switches the zero-copy (mmap-backed) page read path on or off.
    pub fn mmap(mut self, mmap: bool) -> Self {
        self.config = self.config.mmap(mmap);
        self
    }

    /// Sets the compute-kernel backend (bit-identical across backends;
    /// trades speed only).
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.config = self.config.kernel(kernel);
        self
    }

    /// Switches the Phase-1 dimension-tree MTTKRP path on or off
    /// (tolerance-, not bitwise-, equivalent to the per-mode path).
    pub fn dimtree(mut self, dimtree: bool) -> Self {
        self.config = self.config.dimtree(dimtree);
        self.dimtree_set = true;
        self
    }

    /// Enables compress-then-decompose with explicit [`CompressOptions`]
    /// (validated at [`build`](TwoPcpConfigBuilder::build)).
    pub fn compress(mut self, options: CompressOptions) -> Self {
        self.config = self.config.compress(options);
        self.compress_set = true;
        self
    }

    /// Explicitly disables compress-then-decompose, overriding any
    /// `TPCP_COMPRESS` environment setting.
    pub fn compress_off(mut self) -> Self {
        self.config = self.config.compress_off();
        self.compress_set = true;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    /// [`ConfigError`] when the rank is zero or unset, the buffer
    /// fraction is not positive, the partition vector is empty or
    /// contains zeros, the shard count is zero, or the configuration
    /// leaves the kernel backend (dimtree path) to a `TPCP_KERNEL`
    /// (`TPCP_DIMTREE`) value that doesn't parse.
    pub fn build(self) -> std::result::Result<TwoPcpConfig, ConfigError> {
        let c = &self.config;
        if !self.rank_set {
            return Err(ConfigError::new("rank is required — call .rank(F)"));
        }
        if c.kernel == KernelKind::Auto {
            validate_kernel_override(std::env::var(KERNEL_ENV_VAR).ok().as_deref())?;
        }
        if !self.dimtree_set {
            validate_dimtree_override(std::env::var(tpcp_cp::DIMTREE_ENV_VAR).ok().as_deref())?;
        }
        if !self.compress_set {
            validate_compress_override(std::env::var(tpcp_cp::COMPRESS_ENV_VAR).ok().as_deref())?;
        }
        if let Some(compress) = &c.compress {
            tpcp_cp::validate_compress_options(compress)
                .map_err(|e| ConfigError::new(format!("compress: {e}")))?;
        }
        if c.rank == 0 {
            return Err(ConfigError::new("rank must be positive"));
        }
        // `partial_cmp` so NaN (incomparable) is rejected too.
        if c.buffer_fraction.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ConfigError::new("buffer_fraction must be positive"));
        }
        if c.parts.is_empty() {
            return Err(ConfigError::new("parts must not be empty"));
        }
        if c.parts.contains(&0) {
            return Err(ConfigError::new("partition counts must be positive"));
        }
        if c.shards == 0 {
            return Err(ConfigError::new("shard count must be positive"));
        }
        Ok(self.config)
    }
}

/// Strict validation of a would-be `TPCP_KERNEL` value, used by
/// [`TwoPcpConfigBuilder::build`] when the backend is left to the
/// environment: the lenient readers ([`EnvOverrides::from_env`],
/// [`KernelKind::auto`]) silently fall back on malformed values, but a
/// validating build should fail loudly instead of quietly running a
/// different backend than the operator asked for.
///
/// Takes the value as a parameter (rather than reading the environment
/// itself) so tests can exercise the failure path without mutating
/// process-global env vars under a parallel test runner.
fn validate_kernel_override(value: Option<&str>) -> std::result::Result<(), ConfigError> {
    if let Some(v) = value {
        v.parse::<KernelKind>()
            .map_err(|e| ConfigError::new(format!("{KERNEL_ENV_VAR}: {e}")))?;
    }
    Ok(())
}

/// Strict validation of a would-be `TPCP_DIMTREE` value, mirroring
/// [`validate_kernel_override`]: the lenient reader
/// ([`tpcp_cp::dimtree_auto`]) treats malformed values as "off", but a
/// validating build should fail loudly instead of quietly running the
/// per-mode path the operator asked to leave.
fn validate_dimtree_override(value: Option<&str>) -> std::result::Result<(), ConfigError> {
    if let Some(v) = value {
        if !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "on" | "true" | "yes" | "0" | "off" | "false" | "no"
        ) {
            return Err(ConfigError::new(format!(
                "{}: unrecognised value {v:?} (expected 1/on/true/yes or 0/off/false/no)",
                tpcp_cp::DIMTREE_ENV_VAR
            )));
        }
    }
    Ok(())
}

/// Strict validation of a would-be `TPCP_COMPRESS` value, mirroring
/// [`validate_dimtree_override`]: the lenient reader
/// ([`tpcp_cp::compress_auto`]) treats malformed values as "off", but a
/// validating build should fail loudly instead of quietly running the
/// uncompressed pipeline the operator asked to skip.
fn validate_compress_override(value: Option<&str>) -> std::result::Result<(), ConfigError> {
    if let Some(v) = value {
        if !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "on" | "true" | "yes" | "0" | "off" | "false" | "no"
        ) {
            return Err(ConfigError::new(format!(
                "{}: unrecognised value {v:?} (expected 1/on/true/yes or 0/off/false/no)",
                tpcp_cp::COMPRESS_ENV_VAR
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = TwoPcpConfig::new(10)
            .parts(vec![4, 4, 4])
            .schedule(ScheduleKind::ZOrder)
            .policy(PolicyKind::Lru)
            .buffer_fraction(1.0 / 3.0)
            .max_virtual_iters(200)
            .tol(1e-3)
            .seed(9)
            .threads(3);
        assert_eq!(cfg.rank, 10);
        assert_eq!(cfg.parts, vec![4, 4, 4]);
        assert_eq!(cfg.schedule, ScheduleKind::ZOrder);
        assert_eq!(cfg.policy, PolicyKind::Lru);
        assert_eq!(cfg.max_virtual_iters, 200);
        assert_eq!(cfg.par.threads(), 3);
        let cfg = cfg.prefetch_depth(8);
        assert_eq!(cfg.prefetch, PrefetchConfig::with_depth(8));
        let cfg = cfg.prefetch(PrefetchConfig::disabled());
        assert!(!cfg.prefetch.is_active());
        let cfg = cfg.shards(3);
        assert_eq!(cfg.shards, 3);
        let cfg = cfg.mmap(true);
        assert!(cfg.mmap);
        let cfg = cfg.mmap(false);
        assert!(!cfg.mmap);
        assert_eq!(cfg.par(ParConfig::serial()).par, ParConfig::serial());
    }

    #[test]
    fn kernel_setters_chain() {
        let cfg = TwoPcpConfig::new(4).kernel(KernelKind::Reference);
        assert_eq!(cfg.kernel, KernelKind::Reference);
        let cfg = TwoPcpConfig::builder()
            .rank(4)
            .kernel(KernelKind::Tiled)
            .build()
            .unwrap();
        assert_eq!(cfg.kernel, KernelKind::Tiled);
    }

    #[test]
    fn kernel_env_override_applies() {
        let overrides = EnvOverrides {
            kernel: Some(KernelKind::Reference),
            ..Default::default()
        };
        let cfg = overrides.apply(TwoPcpConfig::new(4).kernel(KernelKind::Auto));
        assert_eq!(cfg.kernel, KernelKind::Reference);
        // Unset override leaves an explicit choice alone.
        let cfg = EnvOverrides::default().apply(TwoPcpConfig::new(4).kernel(KernelKind::Tiled));
        assert_eq!(cfg.kernel, KernelKind::Tiled);
    }

    #[test]
    fn garbage_kernel_override_is_a_config_error_not_a_panic() {
        let err = validate_kernel_override(Some("garbage")).unwrap_err();
        assert!(
            err.reason.contains("TPCP_KERNEL") && err.reason.contains("garbage"),
            "error names the variable and the bad value: {}",
            err.reason
        );
        assert!(
            err.reason.contains("reference") && err.reason.contains("tiled"),
            "error lists the valid values: {}",
            err.reason
        );
        // Valid and absent values pass.
        assert!(validate_kernel_override(Some("tiled")).is_ok());
        assert!(validate_kernel_override(Some("reference")).is_ok());
        assert!(validate_kernel_override(Some("auto")).is_ok());
        assert!(validate_kernel_override(None).is_ok());
    }

    #[test]
    fn dimtree_setters_chain() {
        let cfg = TwoPcpConfig::new(4).dimtree(true);
        assert!(cfg.dimtree);
        let cfg = TwoPcpConfig::builder()
            .rank(4)
            .dimtree(true)
            .build()
            .unwrap();
        assert!(cfg.dimtree);
    }

    #[test]
    fn dimtree_env_override_applies() {
        let overrides = EnvOverrides {
            dimtree: Some(true),
            ..Default::default()
        };
        let cfg = overrides.apply(TwoPcpConfig::new(4));
        assert!(cfg.dimtree);
        // Unset override leaves an explicit choice alone.
        let cfg = EnvOverrides::default().apply(TwoPcpConfig::new(4).dimtree(true));
        assert!(cfg.dimtree);
    }

    #[test]
    fn garbage_dimtree_override_is_a_config_error_not_a_panic() {
        let err = validate_dimtree_override(Some("garbage")).unwrap_err();
        assert!(
            err.reason.contains("TPCP_DIMTREE") && err.reason.contains("garbage"),
            "error names the variable and the bad value: {}",
            err.reason
        );
        // Both polarities (and whitespace/case slop) pass; absent passes.
        for v in ["1", "on", "TRUE", " yes ", "0", "off", "False", "no"] {
            assert!(validate_dimtree_override(Some(v)).is_ok(), "{v:?}");
        }
        assert!(validate_dimtree_override(None).is_ok());
    }

    #[test]
    fn compress_setters_chain() {
        let cfg = TwoPcpConfig::new(4).compress(CompressOptions::default());
        assert!(cfg.compress.is_some());
        assert!(cfg.compress_off().compress.is_none());
        let cfg = TwoPcpConfig::builder()
            .rank(4)
            .compress(CompressOptions::builder().energy(0.99).build().unwrap())
            .build()
            .unwrap();
        assert!((cfg.compress.unwrap().energy - 0.99).abs() < 1e-12);
        // Invalid options are rejected at build(), not deep inside a run.
        let bad = CompressOptions {
            energy: 0.0,
            ..Default::default()
        };
        let err = TwoPcpConfig::builder().rank(4).compress(bad).build();
        assert!(err.unwrap_err().reason.contains("compress"));
    }

    #[test]
    fn compress_env_override_applies() {
        let overrides = EnvOverrides {
            compress: Some(true),
            ..Default::default()
        };
        let cfg = overrides.apply(TwoPcpConfig::new(4));
        assert_eq!(cfg.compress, Some(CompressOptions::default()));
        // The env toggle never clobbers explicitly configured knobs.
        let explicit = CompressOptions::builder().energy(0.5).build().unwrap();
        let cfg = overrides.apply(TwoPcpConfig::new(4).compress(explicit.clone()));
        assert_eq!(cfg.compress, Some(explicit));
        // `TPCP_COMPRESS=0` forces the pipeline off.
        let off = EnvOverrides {
            compress: Some(false),
            ..Default::default()
        };
        let cfg = off.apply(TwoPcpConfig::new(4).compress(CompressOptions::default()));
        assert!(cfg.compress.is_none());
        // Unset override leaves an explicit choice alone.
        let cfg = EnvOverrides::default().apply(TwoPcpConfig::new(4).compress(Default::default()));
        assert!(cfg.compress.is_some());
    }

    #[test]
    fn garbage_compress_override_is_a_config_error_not_a_panic() {
        let err = validate_compress_override(Some("garbage")).unwrap_err();
        assert!(
            err.reason.contains("TPCP_COMPRESS") && err.reason.contains("garbage"),
            "error names the variable and the bad value: {}",
            err.reason
        );
        for v in ["1", "on", "TRUE", " yes ", "0", "off", "False", "no"] {
            assert!(validate_compress_override(Some(v)).is_ok(), "{v:?}");
        }
        assert!(validate_compress_override(None).is_ok());
    }

    #[test]
    fn parts_broadcast() {
        let cfg = TwoPcpConfig::new(2).parts(vec![3]);
        assert_eq!(cfg.resolved_parts(4).unwrap(), vec![3, 3, 3, 3]);
        let cfg2 = TwoPcpConfig::new(2).parts(vec![2, 3]);
        assert_eq!(cfg2.resolved_parts(2).unwrap(), vec![2, 3]);
    }

    #[test]
    fn validation_errors() {
        assert!(TwoPcpConfig::new(0).resolved_parts(3).is_err());
        assert!(TwoPcpConfig::new(2)
            .parts(vec![2, 2])
            .resolved_parts(3)
            .is_err());
        assert!(TwoPcpConfig::new(2)
            .buffer_fraction(0.0)
            .resolved_parts(3)
            .is_err());
        assert!(TwoPcpConfig::new(2)
            .parts(vec![0])
            .resolved_parts(3)
            .is_err());
        assert!(TwoPcpConfig::new(2).shards(0).resolved_parts(3).is_err());
    }
}
