//! Configuration for the two-phase pipeline.

use crate::{Result, TwoPcpError};
use std::path::PathBuf;
use tpcp_par::ParConfig;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::{PolicyKind, PrefetchConfig};

/// How the global sub-factors `A(i)(kᵢ)` are initialised before Phase 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitKind {
    /// Mean of the mode-`i` sub-factors across the slab — aligns `A` with
    /// the Phase-1 component space (default).
    SlabMean,
    /// Seeded random initialisation.
    Random,
}

/// Options for Phase 1 (per-block CP-ALS).
///
/// The worker-thread budget moved to [`TwoPcpConfig::par`], so Phase 1,
/// Phase 2 and the kernels beneath them share one budget.
#[derive(Clone, Debug)]
pub struct Phase1Options {
    /// ALS iterations per block.
    pub max_iters: usize,
    /// ALS convergence tolerance per block.
    pub tol: f64,
    /// Route Phase 1 through the MapReduce substrate (paper Observation #1)
    /// instead of in-process threads. Requires `work_dir`.
    pub use_mapreduce: bool,
}

impl Default for Phase1Options {
    fn default() -> Self {
        Phase1Options {
            max_iters: 25,
            tol: 1e-4,
            use_mapreduce: false,
        }
    }
}

/// Full configuration of a 2PCP run (paper Table III's parameter space).
#[derive(Clone, Debug)]
pub struct TwoPcpConfig {
    /// Decomposition rank `F`.
    pub rank: usize,
    /// Partition counts per mode (`K₁ … K_N`); a single-element vector is
    /// broadcast to every mode.
    pub parts: Vec<usize>,
    /// Phase-2 update schedule (MC / FO / ZO / HO, plus the GO extension).
    pub schedule: ScheduleKind,
    /// Buffer replacement policy (LRU / MRU / FOR).
    pub policy: PolicyKind,
    /// Buffer capacity as a fraction of the total space requirement
    /// (paper: 1/3, 1/2, 2/3). Values ≥ 1 keep everything resident.
    pub buffer_fraction: f64,
    /// Maximum number of virtual iterations in Phase 2 (paper: 100/200).
    pub max_virtual_iters: usize,
    /// Stop when the per-virtual-iteration accuracy improvement drops
    /// below this (paper: 10⁻²).
    pub tol: f64,
    /// Ridge for the `T·S⁻¹` solves.
    pub ridge: f64,
    /// Seed for all randomised pieces (block ALS init etc.).
    pub seed: u64,
    /// Where unit pages live; `None` = in-memory store (testing / small
    /// runs), `Some(dir)` = disk store (the out-of-core configuration).
    pub work_dir: Option<PathBuf>,
    /// Initialisation of the global sub-factors.
    pub init: InitKind,
    /// Phase-1 options.
    pub phase1: Phase1Options,
    /// The shared thread budget: Phase-1 block workers, Phase-2 cache
    /// refreshes and every MTTKRP/matmul kernel underneath draw from this
    /// one [`ParConfig`] (defaults to [`ParConfig::auto`], i.e. the
    /// `TPCP_THREADS` override or all available cores). Parallel execution
    /// is deterministic — results are bit-identical for any budget.
    pub par: ParConfig,
    /// The Phase-2 asynchronous prefetch pipeline: a background worker
    /// walks the deterministic update schedule ahead of the refiner and
    /// stages upcoming units, overlapping disk reads with compute
    /// (defaults to [`PrefetchConfig::auto`], i.e. the `TPCP_PREFETCH`
    /// override or an enabled depth-4 pipeline). Prefetch moves bytes,
    /// never values — fit traces, factors and swap counts are
    /// bit-identical with the pipeline on or off.
    pub prefetch: PrefetchConfig,
    /// Number of unit-store shards the driver routes data-access units
    /// across ([`tpcp_storage::ShardedStore`]): Phase 1 emits units
    /// shard-by-shard and Phase 2 reads route transparently (defaults to
    /// [`tpcp_storage::shards_auto`], i.e. the `TPCP_SHARDS` override or
    /// a single unsharded store). Sharding moves bytes, never values —
    /// factors, fits and swap counts are bit-identical at any shard
    /// count.
    pub shards: usize,
    /// The zero-copy page read path: with mmap on, the on-disk unit
    /// stores decode pages directly from memory maps — no scratch-buffer
    /// copy — and hand the buffer pool borrowed page slabs, so a resident
    /// unit materialises with exactly one copy (map → `Mat`). Defaults to
    /// [`tpcp_storage::mmap_auto`], i.e. the `TPCP_MMAP` override or off.
    /// Mmap moves bytes, never values — factors, fits and swap counts are
    /// bit-identical with the flag on or off; irrelevant for in-memory
    /// stores (`work_dir: None`).
    pub mmap: bool,
}

impl TwoPcpConfig {
    /// A configuration with the paper's preferred defaults: Hilbert-order
    /// schedule, forward-looking replacement, 2 partitions per mode.
    pub fn new(rank: usize) -> Self {
        TwoPcpConfig {
            rank,
            parts: vec![2],
            schedule: ScheduleKind::HilbertOrder,
            policy: PolicyKind::Forward,
            buffer_fraction: 1.0,
            max_virtual_iters: 100,
            tol: 1e-2,
            ridge: 1e-9,
            seed: 0,
            work_dir: None,
            init: InitKind::SlabMean,
            phase1: Phase1Options::default(),
            par: ParConfig::auto(),
            prefetch: PrefetchConfig::auto(),
            shards: tpcp_storage::shards_auto(),
            mmap: tpcp_storage::mmap_auto(),
        }
    }

    /// Sets the per-mode partition counts.
    pub fn parts(mut self, parts: Vec<usize>) -> Self {
        self.parts = parts;
        self
    }

    /// Sets the Phase-2 update schedule.
    pub fn schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the buffer replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the buffer size as a fraction of the total space requirement.
    pub fn buffer_fraction(mut self, fraction: f64) -> Self {
        self.buffer_fraction = fraction;
        self
    }

    /// Sets the virtual-iteration budget.
    pub fn max_virtual_iters(mut self, iters: usize) -> Self {
        self.max_virtual_iters = iters;
        self
    }

    /// Sets the Phase-2 stopping tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses an on-disk unit store rooted at `dir`.
    pub fn work_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.work_dir = Some(dir.into());
        self
    }

    /// Sets the sub-factor initialisation strategy.
    pub fn init(mut self, init: InitKind) -> Self {
        self.init = init;
        self
    }

    /// Sets the Phase-1 options.
    pub fn phase1(mut self, phase1: Phase1Options) -> Self {
        self.phase1 = phase1;
        self
    }

    /// Sets the shared worker-thread budget (`0` = decide automatically).
    pub fn threads(mut self, threads: usize) -> Self {
        self.par = ParConfig::with_threads(threads);
        self
    }

    /// Sets the shared thread budget from an explicit [`ParConfig`].
    pub fn par(mut self, par: ParConfig) -> Self {
        self.par = par;
        self
    }

    /// Sets the Phase-2 prefetch pipeline configuration.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the prefetch pipeline depth (`0` disables the pipeline).
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch = PrefetchConfig::with_depth(depth);
        self
    }

    /// Sets the unit-store shard count (`1` = unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Switches the zero-copy (mmap-backed) page read path on or off.
    pub fn mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Resolves the partition vector for an order-`n` tensor (broadcasting
    /// a singleton) and validates the configuration.
    ///
    /// # Errors
    /// [`TwoPcpError::Config`] on invalid rank, partitioning or buffer
    /// fraction.
    pub fn resolved_parts(&self, order: usize) -> Result<Vec<usize>> {
        if self.rank == 0 {
            return Err(TwoPcpError::Config {
                reason: "rank must be positive".into(),
            });
        }
        if self.buffer_fraction <= 0.0 {
            return Err(TwoPcpError::Config {
                reason: "buffer_fraction must be positive".into(),
            });
        }
        if self.shards == 0 {
            return Err(TwoPcpError::Config {
                reason: "shard count must be positive".into(),
            });
        }
        let parts = if self.parts.len() == 1 {
            vec![self.parts[0]; order]
        } else if self.parts.len() == order {
            self.parts.clone()
        } else {
            return Err(TwoPcpError::Config {
                reason: format!(
                    "{} partition counts for an order-{order} tensor",
                    self.parts.len()
                ),
            });
        };
        if parts.contains(&0) {
            return Err(TwoPcpError::Config {
                reason: "partition counts must be positive".into(),
            });
        }
        Ok(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = TwoPcpConfig::new(10)
            .parts(vec![4, 4, 4])
            .schedule(ScheduleKind::ZOrder)
            .policy(PolicyKind::Lru)
            .buffer_fraction(1.0 / 3.0)
            .max_virtual_iters(200)
            .tol(1e-3)
            .seed(9)
            .threads(3);
        assert_eq!(cfg.rank, 10);
        assert_eq!(cfg.parts, vec![4, 4, 4]);
        assert_eq!(cfg.schedule, ScheduleKind::ZOrder);
        assert_eq!(cfg.policy, PolicyKind::Lru);
        assert_eq!(cfg.max_virtual_iters, 200);
        assert_eq!(cfg.par.threads(), 3);
        let cfg = cfg.prefetch_depth(8);
        assert_eq!(cfg.prefetch, PrefetchConfig::with_depth(8));
        let cfg = cfg.prefetch(PrefetchConfig::disabled());
        assert!(!cfg.prefetch.is_active());
        let cfg = cfg.shards(3);
        assert_eq!(cfg.shards, 3);
        let cfg = cfg.mmap(true);
        assert!(cfg.mmap);
        let cfg = cfg.mmap(false);
        assert!(!cfg.mmap);
        assert_eq!(cfg.par(ParConfig::serial()).par, ParConfig::serial());
    }

    #[test]
    fn parts_broadcast() {
        let cfg = TwoPcpConfig::new(2).parts(vec![3]);
        assert_eq!(cfg.resolved_parts(4).unwrap(), vec![3, 3, 3, 3]);
        let cfg2 = TwoPcpConfig::new(2).parts(vec![2, 3]);
        assert_eq!(cfg2.resolved_parts(2).unwrap(), vec![2, 3]);
    }

    #[test]
    fn validation_errors() {
        assert!(TwoPcpConfig::new(0).resolved_parts(3).is_err());
        assert!(TwoPcpConfig::new(2)
            .parts(vec![2, 2])
            .resolved_parts(3)
            .is_err());
        assert!(TwoPcpConfig::new(2)
            .buffer_fraction(0.0)
            .resolved_parts(3)
            .is_err());
        assert!(TwoPcpConfig::new(2)
            .parts(vec![0])
            .resolved_parts(3)
            .is_err());
        assert!(TwoPcpConfig::new(2).shards(0).resolved_parts(3).is_err());
    }
}
