//! The "Naive CP" baseline: out-of-core CP-ALS without partitioned
//! refinement.
//!
//! Table II's baseline is TensorDB's secondary-storage CP-ALS: the tensor
//! lives on disk in chunks, and **every ALS iteration re-reads the entire
//! tensor once per mode** to compute the MTTKRP. This module reproduces
//! that architecture: blocks are materialised to disk once, then streamed
//! back `N` times per iteration, with all traffic counted. The contrast
//! with 2PCP is structural — Phase 2 of 2PCP touches only factor-sized
//! units (`ΣKᵢ · (Iᵢ/Kᵢ)·F·(1+Π_{j≠i}Kⱼ)` doubles) while the naive
//! baseline re-reads `Πᵢ Iᵢ` doubles per mode per iteration, which is what
//! makes it exceed 12 hours at the paper's scale.

use crate::{Result, TwoPcpError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use tpcp_cp::{mttkrp_dense, CpModel};
use tpcp_linalg::{hadamard_all, solve, Mat};
use tpcp_partition::{split_dense, Grid};
use tpcp_storage::codec::fnv1a;
use tpcp_tensor::{random_factor, DenseTensor};

/// Options for the out-of-core naive baseline.
#[derive(Clone, Debug)]
pub struct NaiveOocOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Chunking grid (how the tensor is stored on disk; TensorDB chunks).
    pub parts: Vec<usize>,
    /// ALS iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the fit.
    pub tol: f64,
    /// Ridge for the normal-equation solves.
    pub ridge: f64,
    /// Seed for factor initialisation.
    pub seed: u64,
    /// Directory for the chunk files.
    pub work_dir: PathBuf,
}

impl NaiveOocOptions {
    /// Defaults: rank 10, 2 chunks per mode, 25 iterations.
    pub fn new(work_dir: impl Into<PathBuf>) -> Self {
        NaiveOocOptions {
            rank: 10,
            parts: vec![2],
            max_iters: 25,
            tol: 1e-4,
            ridge: 1e-9,
            seed: 0,
            work_dir: work_dir.into(),
        }
    }
}

/// Outcome of the baseline run.
#[derive(Clone, Debug)]
pub struct NaiveOocReport {
    /// The fitted model.
    pub model: CpModel,
    /// Final fit.
    pub fit: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Tensor bytes written during chunking (once).
    pub bytes_written: u64,
    /// Tensor bytes re-read during the ALS sweeps (N per iteration).
    pub bytes_read: u64,
}

const BLOCK_MAGIC: &[u8; 8] = b"2PCPBLCK";

fn block_path(dir: &Path, lin: usize) -> PathBuf {
    dir.join(format!("block_{lin}.blk"))
}

fn write_block(dir: &Path, lin: usize, block: &DenseTensor) -> Result<u64> {
    let mut buf: Vec<u8> = Vec::with_capacity(16 + block.dims().len() * 8 + block.len() * 8 + 8);
    buf.extend_from_slice(BLOCK_MAGIC);
    buf.extend_from_slice(&(block.dims().len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    for &d in block.dims() {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in block.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    let mut f = std::io::BufWriter::new(fs::File::create(block_path(dir, lin))?);
    f.write_all(&buf)?;
    f.flush()?;
    Ok(buf.len() as u64)
}

fn read_block(dir: &Path, lin: usize) -> Result<(DenseTensor, u64)> {
    let mut buf = Vec::new();
    std::io::BufReader::new(fs::File::open(block_path(dir, lin))?).read_to_end(&mut buf)?;
    let corrupt = |reason: &str| {
        TwoPcpError::Storage(tpcp_storage::StorageError::Corrupt {
            reason: reason.to_string(),
        })
    };
    if buf.len() < 24 || &buf[..8] != BLOCK_MAGIC {
        return Err(corrupt("bad block header"));
    }
    let (body, trailer) = buf.split_at(buf.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if stored != fnv1a(body) {
        return Err(corrupt("block checksum mismatch"));
    }
    let order = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")) as usize;
    let mut off = 16;
    let mut dims = Vec::with_capacity(order);
    for _ in 0..order {
        dims.push(u64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes")) as usize);
        off += 8;
    }
    let cells: usize = dims.iter().product();
    if body.len() != off + cells * 8 {
        return Err(corrupt("block payload size mismatch"));
    }
    let mut data = Vec::with_capacity(cells);
    for chunk in body[off..].chunks_exact(8) {
        data.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    Ok((DenseTensor::from_vec(&dims, data), buf.len() as u64))
}

/// Runs out-of-core CP-ALS: chunk the tensor to disk once, then stream all
/// chunks back `N` times per iteration.
///
/// # Errors
/// Configuration, I/O or numerical failures.
pub fn naive_cp_out_of_core(x: &DenseTensor, options: &NaiveOocOptions) -> Result<NaiveOocReport> {
    if options.rank == 0 {
        return Err(TwoPcpError::Config {
            reason: "rank must be positive".into(),
        });
    }
    let order = x.order();
    let parts = if options.parts.len() == 1 {
        vec![options.parts[0]; order]
    } else if options.parts.len() == order {
        options.parts.clone()
    } else {
        return Err(TwoPcpError::Config {
            reason: "parts length must be 1 or match the tensor order".into(),
        });
    };
    let grid = Grid::new(x.dims(), &parts);
    fs::create_dir_all(&options.work_dir)?;

    // ---- Chunk to disk (TensorDB load). ---------------------------------
    let mut bytes_written = 0u64;
    for (lin, block) in split_dense(x, &grid).into_iter().enumerate() {
        bytes_written += write_block(&options.work_dir, lin, &block)?;
    }
    let norm_x_sq = x.fro_norm_sq();

    // ---- ALS over disk-resident chunks. ----------------------------------
    let f = options.rank;
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut factors: Vec<Mat> = x
        .dims()
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    let mut grams: Vec<Mat> = factors.iter().map(Mat::gram).collect();
    let mut bytes_read = 0u64;
    let mut fit = 0.0;
    let mut prev_fit = f64::NEG_INFINITY;
    let mut iterations = 0;

    for _iter in 0..options.max_iters {
        iterations += 1;
        let mut last_m: Option<Mat> = None;
        for mode in 0..order {
            let mut m = Mat::zeros(x.dims()[mode], f);
            // One full pass over the tensor per mode.
            for lin in 0..grid.num_blocks() {
                let (block, bytes) = read_block(&options.work_dir, lin)?;
                bytes_read += bytes;
                let coords = grid.block_coords(lin);
                let slices: Vec<Mat> = factors
                    .iter()
                    .enumerate()
                    .map(|(h, a)| {
                        let r = grid.part_range(h, coords[h]);
                        a.row_block(r.start, r.end - r.start)
                    })
                    .collect();
                let refs: Vec<&Mat> = slices.iter().collect();
                let partial = mttkrp_dense(&block, &refs, mode)?;
                let dst = grid.part_range(mode, coords[mode]);
                for (row_off, src_row) in (dst.start..dst.end).zip(0..partial.rows()) {
                    for (d, &s) in m.row_mut(row_off).iter_mut().zip(partial.row(src_row)) {
                        *d += s;
                    }
                }
            }
            let other: Vec<&Mat> = (0..order)
                .filter(|&h| h != mode)
                .map(|h| &grams[h])
                .collect();
            let s = hadamard_all(&other)?;
            let a = solve::solve_gram_system(&m, &s, options.ridge)?;
            grams[mode] = a.gram();
            factors[mode] = a;
            if mode == order - 1 {
                last_m = Some(m);
            }
        }
        let m = last_m.expect("order >= 1");
        let inner: f64 = m
            .as_slice()
            .iter()
            .zip(factors[order - 1].as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let gram_refs: Vec<&Mat> = grams.iter().collect();
        let model_sq = hadamard_all(&gram_refs)?.sum().max(0.0);
        let err_sq = (norm_x_sq - 2.0 * inner + model_sq).max(0.0);
        fit = if norm_x_sq > 0.0 {
            1.0 - (err_sq.sqrt() / norm_x_sq.sqrt())
        } else {
            1.0
        };
        if (fit - prev_fit).abs() < options.tol {
            break;
        }
        prev_fit = fit;
    }

    let mut model = CpModel::new(vec![1.0; f], factors)?;
    model.normalize();
    Ok(NaiveOocReport {
        model,
        fit,
        iterations,
        bytes_written,
        bytes_read,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpcp_naive_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn low_rank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        CpModel::new(vec![1.0; f], factors)
            .unwrap()
            .reconstruct_dense()
    }

    #[test]
    fn matches_in_memory_als_quality() {
        let x = low_rank(&[10, 9, 8], 2, 4);
        let dir = scratch("match");
        let report = naive_cp_out_of_core(
            &x,
            &NaiveOocOptions {
                rank: 2,
                max_iters: 60,
                tol: 1e-8,
                seed: 3,
                ..NaiveOocOptions::new(&dir)
            },
        )
        .unwrap();
        assert!(report.fit > 0.99, "fit {}", report.fit);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rereads_tensor_n_times_per_iteration() {
        let x = low_rank(&[8, 8, 8], 2, 1);
        let dir = scratch("traffic");
        let report = naive_cp_out_of_core(
            &x,
            &NaiveOocOptions {
                rank: 2,
                max_iters: 5,
                tol: 0.0, // run all 5 iterations
                ..NaiveOocOptions::new(&dir)
            },
        )
        .unwrap();
        assert_eq!(report.iterations, 5);
        // 3 modes × 5 iterations × the whole tensor.
        assert_eq!(report.bytes_read, 15 * report.bytes_written);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn block_roundtrip_and_corruption_detection() {
        let dir = scratch("codec");
        fs::create_dir_all(&dir).unwrap();
        let block = low_rank(&[3, 4, 2], 2, 9);
        write_block(&dir, 0, &block).unwrap();
        let (back, _) = read_block(&dir, 0).unwrap();
        assert_eq!(back, block);
        // Corrupt a byte.
        let path = block_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 1;
        fs::write(&path, bytes).unwrap();
        assert!(read_block(&dir, 0).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_config() {
        let x = low_rank(&[4, 4], 1, 0);
        let dir = scratch("cfg");
        assert!(naive_cp_out_of_core(
            &x,
            &NaiveOocOptions {
                rank: 0,
                ..NaiveOocOptions::new(&dir)
            }
        )
        .is_err());
        assert!(naive_cp_out_of_core(
            &x,
            &NaiveOocOptions {
                parts: vec![2, 2, 2],
                ..NaiveOocOptions::new(&dir)
            }
        )
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
