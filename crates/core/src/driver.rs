//! The top-level two-phase driver.

use crate::accuracy::blockwise_fit_source;
use crate::config::TwoPcpConfig;
use crate::phase1::{grid_for, run_phase1_mapreduce_source, run_phase1_source, Phase1Result};
use crate::phase2::{refine, RefineStats};
use crate::pq::QHadamardStats;
use crate::Result;
use std::time::{Duration, Instant};
use tpcp_compress::{compress_decompose, CompressProvenance};
use tpcp_cp::{AlsOptions, CpModel};
use tpcp_mapreduce::JobCounters;
use tpcp_partition::{BlockSource, DenseMemorySource, SparseMemorySource};
use tpcp_storage::{DiskStore, IoStats, MemStore, PrefetchSource, ShardedStore, UnitStore};
use tpcp_tensor::{DenseTensor, SparseTensor};

/// The 2PCP decomposition engine (see crate docs for an example).
pub struct TwoPcp {
    config: TwoPcpConfig,
}

/// The result of a full two-phase decomposition.
#[derive(Clone, Debug)]
pub struct TwoPcpOutcome {
    /// The rank-`F` CP model of the input tensor.
    pub model: CpModel,
    /// Exact accuracy against the input (paper §III-B).
    pub fit: f64,
    /// Phase-1 details (grid, per-block fits, space requirement).
    pub phase1: Phase1Result,
    /// Phase-2 statistics (swaps, fit trace, convergence).
    pub phase2: RefineStats,
    /// Wall-clock time of Phase 1.
    pub phase1_time: Duration,
    /// Wall-clock time of Phase 2.
    pub phase2_time: Duration,
    /// MapReduce counters (all zero unless Phase 1 ran on the substrate).
    pub mr_counters: tpcp_mapreduce::CounterSnapshot,
    /// Compression provenance (`None` unless the run went through the
    /// compress-then-decompose pipeline, [`TwoPcpConfig::compress`]).
    pub compress: Option<CompressProvenance>,
}

enum Input<'a> {
    Dense(&'a DenseTensor),
    Sparse(&'a SparseTensor),
    Source(&'a mut dyn BlockSource),
}

/// How the exact accuracy against the input is computed after Phase 2.
enum ExactFit<'a> {
    /// Against the resident dense tensor.
    Dense(&'a DenseTensor),
    /// Against the resident sparse tensor.
    Sparse(&'a SparseTensor),
    /// By re-streaming the ingest source blockwise (one block resident at
    /// a time — the streaming memory bound extends to the accuracy pass).
    Stream,
}

impl TwoPcp {
    /// Creates a driver with the given configuration.
    pub fn new(config: TwoPcpConfig) -> Self {
        TwoPcp { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TwoPcpConfig {
        &self.config
    }

    /// Decomposes a dense tensor.
    ///
    /// # Errors
    /// Configuration, numerical, storage or MapReduce failures.
    pub fn decompose_dense(&self, x: &DenseTensor) -> Result<TwoPcpOutcome> {
        self.dispatch(Input::Dense(x))
    }

    /// Decomposes a sparse tensor.
    ///
    /// # Errors
    /// Configuration, numerical, storage or MapReduce failures.
    pub fn decompose_sparse(&self, x: &SparseTensor) -> Result<TwoPcpOutcome> {
        self.dispatch(Input::Sparse(x))
    }

    /// Decomposes a tensor streamed from a [`BlockSource`] — the full
    /// tensor is never materialised. Phase 1 pulls one batch of blocks at
    /// a time ([`TwoPcpConfig::par`] threads wide), and the final exact
    /// accuracy re-streams the source blockwise, so peak tensor residency
    /// throughout the run is O(largest block × threads).
    ///
    /// Exception: with [`crate::Phase1Options::use_mapreduce`]
    /// (the paper's cluster formulation simulated in-process) the mapper
    /// input is the tensor's full COO record set, so that path is bounded
    /// by the non-zero count, not by one block — see
    /// [`run_phase1_mapreduce_source`] for details.
    ///
    /// # Errors
    /// Source, configuration, numerical, storage or MapReduce failures.
    pub fn decompose_source(&self, src: &mut dyn BlockSource) -> Result<TwoPcpOutcome> {
        self.dispatch(Input::Source(src))
    }

    fn dispatch(&self, input: Input<'_>) -> Result<TwoPcpOutcome> {
        // Shard count 0 is rejected by config validation inside Phase 1;
        // route it to the unsharded arm rather than panicking here.
        match (&self.config.work_dir, self.config.shards) {
            (Some(dir), 0 | 1) => {
                let store = DiskStore::open_with(dir.join("units"), self.config.mmap)?;
                self.run(input, store)
            }
            (Some(dir), shards) => {
                let mut store = ShardedStore::open_disk(dir.join("units"), shards)?;
                store.set_mmap(self.config.mmap);
                self.run(input, store)
            }
            (None, 0 | 1) => self.run(input, MemStore::new()),
            (None, shards) => self.run(input, ShardedStore::mem(shards)),
        }
    }

    fn run<S: UnitStore + PrefetchSource>(
        &self,
        input: Input<'_>,
        store: S,
    ) -> Result<TwoPcpOutcome> {
        // Every input becomes a streaming source; resident tensors keep
        // their direct exact-fit path (cheaper, same value as always).
        match input {
            Input::Dense(x) => {
                let mut src = DenseMemorySource::new(x);
                self.run_streaming(&mut src, ExactFit::Dense(x), store)
            }
            Input::Sparse(x) => {
                let mut src = SparseMemorySource::new(x);
                self.run_streaming(&mut src, ExactFit::Sparse(x), store)
            }
            Input::Source(src) => self.run_streaming(src, ExactFit::Stream, store),
        }
    }

    fn run_streaming<S: UnitStore + PrefetchSource>(
        &self,
        src: &mut dyn BlockSource,
        exact: ExactFit<'_>,
        mut store: S,
    ) -> Result<TwoPcpOutcome> {
        let cfg = &self.config;
        let counters = JobCounters::new();

        // ---- Compress-then-decompose (opt-in) ------------------------------
        // Replaces both phases wholesale; the default (`compress: None`)
        // path below is untouched — bitwise identical to builds without
        // the knob.
        if cfg.compress.is_some() {
            return self.run_compressed(src, exact);
        }

        // ---- Phase 1 -------------------------------------------------------
        let t0 = Instant::now();
        let phase1 = if cfg.phase1.use_mapreduce {
            let mr_dir = cfg
                .work_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir)
                .join(format!("shuffle_{}", std::process::id()));
            run_phase1_mapreduce_source(src, cfg, &mut store, &mr_dir, &counters)?
        } else {
            run_phase1_source(src, cfg, &mut store)?
        };
        let phase1_time = t0.elapsed();

        // ---- Phase 2 -------------------------------------------------------
        let t1 = Instant::now();
        let outcome = refine(&phase1.grid, store, cfg, &phase1.u_norm_sq)?;
        let phase2_time = t1.elapsed();

        // ---- Exact accuracy -------------------------------------------------
        let fit = match exact {
            ExactFit::Dense(x) => outcome.model.fit_dense(x)?,
            ExactFit::Sparse(x) => outcome.model.fit_sparse(x)?,
            ExactFit::Stream => blockwise_fit_source(&outcome.model, &phase1.grid, src)?,
        };

        Ok(TwoPcpOutcome {
            model: outcome.model,
            fit,
            phase1,
            phase2: outcome.stats,
            phase1_time,
            phase2_time,
            mr_counters: counters.snapshot(),
            compress: None,
        })
    }

    /// The compress-then-decompose pipeline: streaming Tucker compression,
    /// CP on the core, expansion and an exact polish (`tpcp-compress`),
    /// reported through the same [`TwoPcpOutcome`] shape as the two-phase
    /// path. Compression + core CP + polish are timed as "phase 1" (the
    /// decomposition proper); `phase2_time` is zero since no refinement
    /// phase runs. Phase-2 I/O stats are empty — the pipeline streams
    /// blocks, it never touches a unit store.
    fn run_compressed(
        &self,
        src: &mut dyn BlockSource,
        exact: ExactFit<'_>,
    ) -> Result<TwoPcpOutcome> {
        let cfg = &self.config;
        let dims = src.dims().to_vec();
        let grid = grid_for(cfg, &dims)?;

        let t0 = Instant::now();
        let options = AlsOptions {
            rank: cfg.rank,
            max_iters: cfg.max_virtual_iters,
            tol: cfg.tol,
            ridge: cfg.ridge,
            seed: cfg.seed,
            init: None,
            par: cfg.par,
            kernel: cfg.kernel,
            dimtree: cfg.dimtree,
            compress: cfg.compress.clone(),
        };
        let out = compress_decompose(src, &grid, &options)?;
        let phase1_time = t0.elapsed();

        let fit = match exact {
            ExactFit::Dense(x) => out.model.fit_dense(x)?,
            ExactFit::Sparse(x) => out.model.fit_sparse(x)?,
            ExactFit::Stream => blockwise_fit_source(&out.model, &grid, src)?,
        };

        let num_blocks = grid.num_blocks();
        let peak_block_bytes = (0..num_blocks)
            .map(|lin| {
                grid.block_dims(&grid.block_coords(lin))
                    .iter()
                    .product::<usize>() as u64
                    * std::mem::size_of::<f64>() as u64
            })
            .max()
            .unwrap_or(0);
        let phase1 = Phase1Result {
            grid,
            block_norms_sq: out.block_norms_sq.clone(),
            u_norm_sq: vec![0.0; num_blocks],
            block_fits: Vec::new(),
            total_unit_bytes: 0,
            ingested_bytes: src.bytes_loaded(),
            peak_block_bytes,
        };
        let phase2 = RefineStats {
            io: IoStats::default(),
            swaps_per_iteration: Vec::new(),
            fit_trace: out.core_report.fit_trace.clone(),
            virtual_iterations: out.core_report.iterations,
            converged: out.core_report.converged,
            warmup_iterations: 0,
            q_hadamard: QHadamardStats::default(),
        };
        Ok(TwoPcpOutcome {
            model: out.model,
            fit,
            phase1,
            phase2,
            phase1_time,
            phase2_time: Duration::ZERO,
            mr_counters: JobCounters::new().snapshot(),
            compress: Some(out.provenance),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Phase1Options;
    use rand::SeedableRng;
    use tpcp_linalg::Mat;
    use tpcp_schedule::ScheduleKind;
    use tpcp_storage::PolicyKind;
    use tpcp_tensor::random_factor;

    fn low_rank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        CpModel::new(vec![1.0; f], factors)
            .unwrap()
            .reconstruct_dense()
    }

    #[test]
    fn end_to_end_dense_in_memory() {
        let x = low_rank(&[10, 10, 10], 2, 4);
        // Pins the two-phase pipeline (MR counters stay zero without
        // mapreduce); opt out of a TPCP_COMPRESS=1 environment.
        let outcome = TwoPcp::new(
            TwoPcpConfig::new(2)
                .compress_off()
                .parts(vec![2])
                .max_virtual_iters(40)
                .tol(1e-7),
        )
        .decompose_dense(&x)
        .unwrap();
        assert!(outcome.fit > 0.97, "fit {}", outcome.fit);
        assert_eq!(outcome.model.dims(), vec![10, 10, 10]);
        assert_eq!(outcome.mr_counters.map_input_records, 0);
    }

    #[test]
    fn end_to_end_on_disk_matches_in_memory() {
        let x = low_rank(&[8, 8, 8], 2, 6);
        // Pins phase-2 swap counts and store I/O; opt out of a
        // TPCP_COMPRESS=1 environment.
        let cfg = TwoPcpConfig::new(2)
            .compress_off()
            .parts(vec![2])
            .schedule(ScheduleKind::ZOrder)
            .policy(PolicyKind::Forward)
            .buffer_fraction(0.5)
            .max_virtual_iters(15)
            .tol(0.0);

        let mem = TwoPcp::new(cfg.clone()).decompose_dense(&x).unwrap();

        let dir = std::env::temp_dir().join(format!("tpcp_driver_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = TwoPcp::new(cfg.work_dir(&dir)).decompose_dense(&x).unwrap();

        // Same seeds + same schedule => bit-identical math, independent of
        // the storage backend.
        assert_eq!(mem.fit, disk.fit);
        assert_eq!(
            mem.phase2.swaps_per_iteration,
            disk.phase2.swaps_per_iteration
        );
        assert!(disk.phase2.io.fetches > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn end_to_end_sparse() {
        let x = low_rank(&[9, 9, 9], 2, 8);
        let sp = SparseTensor::from_dense(&x, 0.0);
        let outcome = TwoPcp::new(
            TwoPcpConfig::new(2)
                .parts(vec![3])
                .max_virtual_iters(40)
                .tol(1e-7),
        )
        .decompose_sparse(&sp)
        .unwrap();
        assert!(outcome.fit > 0.9, "fit {}", outcome.fit);
    }

    #[test]
    fn end_to_end_mapreduce_phase1() {
        let x = low_rank(&[8, 8, 8], 2, 10);
        let dir = std::env::temp_dir().join(format!("tpcp_driver_mr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Pins the mapreduce phase-1 counters; opt out of a
        // TPCP_COMPRESS=1 environment.
        let outcome = TwoPcp::new(
            TwoPcpConfig::new(2)
                .compress_off()
                .parts(vec![2])
                .max_virtual_iters(30)
                .tol(1e-6)
                .work_dir(&dir)
                .phase1(Phase1Options::default().mapreduce(true)),
        )
        .decompose_dense(&x)
        .unwrap();
        assert!(outcome.fit > 0.9, "fit {}", outcome.fit);
        assert_eq!(outcome.mr_counters.map_input_records, 512);
        assert_eq!(outcome.mr_counters.reduce_groups, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
