//! Data-swap simulation (paper Figure 12).
//!
//! The paper observes that "the per-iteration number of swaps is not a
//! function of the data, but the number of partitions and the size of the
//! buffer relative to the total space requirement" (§VIII-C1). This module
//! therefore replays a schedule against the *real* buffer pool and policies
//! with skeletal unit payloads whose sizes preserve the paper's byte
//! formula ratios, counting swaps exactly — in milliseconds instead of the
//! hours a real decomposition would take.

use crate::{Result, TwoPcpError};
use tpcp_linalg::Mat;
use tpcp_partition::Grid;
use tpcp_schedule::{build_cycle, virtual_iteration_len, CycleOracle, ScheduleKind, UnitId};
use tpcp_storage::{
    capacity_for_fraction, BufferPool, IoStats, MemStore, PolicyKind, UnitData, UnitStore,
};

/// Configuration of one swap-simulation cell of Figure 12.
#[derive(Clone, Debug)]
pub struct SwapSimConfig {
    /// Partition counts per mode (e.g. `[8, 8, 8]`).
    pub parts: Vec<usize>,
    /// Update schedule.
    pub schedule: ScheduleKind,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Buffer size as a fraction of the total space requirement.
    pub buffer_fraction: f64,
    /// Number of virtual iterations to simulate.
    pub virtual_iters: usize,
}

/// Result of a swap simulation.
#[derive(Clone, Debug)]
pub struct SwapReport {
    /// Swaps in each simulated virtual iteration.
    pub swaps_per_iteration: Vec<u64>,
    /// Mean swaps per iteration excluding the cold-start window (the first
    /// full schedule cycle).
    pub steady_swaps: f64,
    /// Virtual iterations covered by one full cycle (the cold-start
    /// window).
    pub warmup_iterations: usize,
    /// Full buffer statistics.
    pub io: IoStats,
    /// Number of data-access units in the configuration.
    pub unit_count: usize,
}

/// Exact byte size of the unit `⟨mode, kᵢ⟩` under the paper's §VI formula:
/// `((Iᵢ/Kᵢ)·F + (Π_{j≠i} Kⱼ)·(Iᵢ/Kᵢ)·F) × 8`.
pub fn unit_bytes(dims: &[usize], parts: &[usize], rank: usize, mode: usize) -> usize {
    let rows = dims[mode] / parts[mode];
    let slab: usize = parts
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != mode)
        .map(|(_, &k)| k)
        .product();
    rows * rank * (1 + slab) * 8
}

/// Simulates `cfg.virtual_iters` virtual iterations of the schedule and
/// counts data swaps, using the production buffer pool, policies and
/// next-use oracle.
///
/// Unit payloads are skeletal (one row, rank one) — for the paper's uniform
/// cubic grids every unit shrinks by the same factor `(Iᵢ/Kᵢ)·F`, so the
/// byte-budget arithmetic (and hence the swap counts) is exact.
///
/// # Errors
/// [`TwoPcpError::Config`] on an invalid configuration, storage errors if
/// the buffer cannot hold one step's working set.
pub fn simulate_swaps(cfg: &SwapSimConfig) -> Result<SwapReport> {
    if cfg.parts.is_empty() || cfg.parts.contains(&0) {
        return Err(TwoPcpError::Config {
            reason: "parts must be non-empty and positive".into(),
        });
    }
    if cfg.buffer_fraction <= 0.0 {
        return Err(TwoPcpError::Config {
            reason: "buffer_fraction must be positive".into(),
        });
    }
    // Skeletal grid: one row per partition.
    let grid = Grid::new(&cfg.parts, &cfg.parts);

    // Seed the store with skeletal units (1×1 factor, 1×1 sub-factors).
    let mut store = MemStore::new();
    let mut total_bytes = 0usize;
    let mut max_unit_bytes = 0usize;
    for lin in 0..grid.num_units() {
        let unit = UnitId::from_linear(&grid, lin);
        let mode = usize::from(unit.mode);
        let sub_factors: Vec<(u64, Mat)> = grid
            .slab(mode, unit.part as usize)
            .map(|l| (l as u64, Mat::zeros(1, 1)))
            .collect();
        let data = UnitData {
            unit,
            factor: Mat::zeros(1, 1),
            sub_factors,
        };
        total_bytes += data.payload_bytes();
        max_unit_bytes = max_unit_bytes.max(data.payload_bytes());
        store.write(&data)?;
    }

    // Capacity arithmetic mirrors `refine` exactly (same one-unit floor),
    // so the simulated eviction sequence matches the real refiner's.
    let capacity = if cfg.buffer_fraction >= 1.0 {
        usize::MAX
    } else {
        capacity_for_fraction(total_bytes, cfg.buffer_fraction).max(max_unit_bytes)
    };
    let cycle = build_cycle(&grid, cfg.schedule);
    let oracle = CycleOracle::new(&grid, &cycle);
    let bound = oracle.bind(&grid);
    let mut pool = BufferPool::new(store, capacity, cfg.policy).with_oracle(&bound);

    // Mirror the refiner's P/Q-initialisation scan: one pooled acquire per
    // unit in linear order, warming the buffer before the cycle starts.
    for lin in 0..grid.num_units() {
        let hold = [UnitId::from_linear(&grid, lin)];
        pool.acquire(&hold)?;
        pool.release(&hold);
    }

    // Virtual iterations in sub-factor updates (paper Def. 3): a block
    // step is N updates, a mode-centric step one.
    let vlen = virtual_iteration_len(&grid) as u64;
    let cycle_len = cycle.len() as u64;
    let cycle_updates: u64 = cycle.iter().map(|s| s.update_count(&grid) as u64).sum();
    let mut swaps_per_iteration = Vec::with_capacity(cfg.virtual_iters);
    let mut pos: u64 = 0;
    let mut updates_done: u64 = 0;
    for vi in 0..cfg.virtual_iters {
        let before = pool.stats().fetches;
        let quota = (vi as u64 + 1) * vlen;
        while updates_done < quota {
            let step = cycle[(pos % cycle_len) as usize];
            pool.set_position(pos);
            // Mirror the refiner exactly: one unit resident per sub-factor
            // update (Algorithm 2 touches the modes of a block in turn).
            for unit in step.units(&grid) {
                let hold = [unit];
                pool.acquire(&hold)?;
                pool.release(&hold);
                updates_done += 1;
            }
            pos += 1;
        }
        swaps_per_iteration.push(pool.stats().fetches - before);
    }

    let warmup_iterations = (cycle_updates as usize).div_ceil(vlen as usize);
    let steady_swaps = crate::phase2::steady_mean(&swaps_per_iteration, warmup_iterations);

    Ok(SwapReport {
        swaps_per_iteration,
        steady_swaps,
        warmup_iterations,
        io: pool.stats(),
        unit_count: grid.num_units(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(parts: usize, schedule: ScheduleKind, policy: PolicyKind, fraction: f64) -> SwapReport {
        simulate_swaps(&SwapSimConfig {
            parts: vec![parts; 3],
            schedule,
            policy,
            buffer_fraction: fraction,
            virtual_iters: 200,
        })
        .unwrap()
    }

    #[test]
    fn unbounded_buffer_swaps_only_cold_misses() {
        for kind in ScheduleKind::ALL {
            let r = sim(4, kind, PolicyKind::Lru, 1.0);
            assert_eq!(r.io.fetches, 12, "{kind}: one fetch per unit");
            assert_eq!(r.io.evictions, 0, "{kind}");
            assert_eq!(
                r.steady_swaps, 0.0,
                "{kind}: cold misses all fall in warmup"
            );
        }
    }

    #[test]
    fn mc_lru_thrashes_at_small_buffers() {
        // §VIII-C1: MC with LRU is the worst strategy — with 1/3 buffer the
        // cyclic unit order defeats LRU completely: every access misses.
        let r = sim(8, ScheduleKind::ModeCentric, PolicyKind::Lru, 1.0 / 3.0);
        assert_eq!(r.unit_count, 24);
        assert!(
            r.steady_swaps >= 23.9,
            "expected ~24 swaps/iter, got {}",
            r.steady_swaps
        );
    }

    #[test]
    fn mru_improves_mode_centric() {
        let lru = sim(8, ScheduleKind::ModeCentric, PolicyKind::Lru, 1.0 / 3.0);
        let mru = sim(8, ScheduleKind::ModeCentric, PolicyKind::Mru, 1.0 / 3.0);
        assert!(
            mru.steady_swaps < lru.steady_swaps,
            "MRU {} should beat LRU {}",
            mru.steady_swaps,
            lru.steady_swaps
        );
    }

    #[test]
    fn hilbert_forward_is_best() {
        // The paper's headline: HO+FOR ⪅ 1.1 swaps/iter at 8³ with 1/3
        // buffer, far below MC/LRU's ~24.
        let ho_for = sim(
            8,
            ScheduleKind::HilbertOrder,
            PolicyKind::Forward,
            1.0 / 3.0,
        );
        let mc_lru = sim(8, ScheduleKind::ModeCentric, PolicyKind::Lru, 1.0 / 3.0);
        assert!(
            ho_for.steady_swaps < 1.5,
            "HO+FOR steady swaps {}",
            ho_for.steady_swaps
        );
        assert!(ho_for.steady_swaps < mc_lru.steady_swaps / 10.0);
    }

    #[test]
    fn larger_buffers_swap_less() {
        for kind in [ScheduleKind::FiberOrder, ScheduleKind::ZOrder] {
            let small = sim(8, kind, PolicyKind::Forward, 1.0 / 3.0);
            let large = sim(8, kind, PolicyKind::Forward, 2.0 / 3.0);
            assert!(
                large.steady_swaps <= small.steady_swaps,
                "{kind}: {} vs {}",
                large.steady_swaps,
                small.steady_swaps
            );
        }
    }

    #[test]
    fn forward_beats_or_ties_lru_everywhere() {
        // Belady-style replacement is optimal for fixed reference strings;
        // with the exact oracle it can never lose to LRU.
        for parts in [2usize, 4] {
            for kind in ScheduleKind::ALL {
                for fraction in [1.0 / 3.0, 0.5, 2.0 / 3.0] {
                    let fwd = sim(parts, kind, PolicyKind::Forward, fraction);
                    let lru = sim(parts, kind, PolicyKind::Lru, fraction);
                    assert!(
                        fwd.steady_swaps <= lru.steady_swaps + 1e-9,
                        "{kind} {parts}^3 f={fraction}: FOR {} > LRU {}",
                        fwd.steady_swaps,
                        lru.steady_swaps
                    );
                }
            }
        }
    }

    #[test]
    fn unit_bytes_matches_paper_example() {
        // §VIII-C1 worked example: 100K³ tensor, 8³ grid, F=100:
        // one unit = (100000/8 · 100) · (1 + 64) · 8 = 650 MB.
        let b = unit_bytes(&[100_000; 3], &[8; 3], 100, 0);
        assert_eq!(b, 12_500 * 100 * 65 * 8);
        // 8.32 swaps/iter ⇒ ~6.3 GB/iter (paper: "≈ 6GB data exchange").
        let gb = 8.32 * b as f64 / 1e9;
        assert!((5.0..7.0).contains(&gb), "{gb}");
        // 0.22 swaps/iter ⇒ ~140 MB (paper: "only ~160MB").
        let mb = 0.22 * b as f64 / 1e6;
        assert!((120.0..180.0).contains(&mb), "{mb}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(simulate_swaps(&SwapSimConfig {
            parts: vec![],
            schedule: ScheduleKind::ZOrder,
            policy: PolicyKind::Lru,
            buffer_fraction: 0.5,
            virtual_iters: 1,
        })
        .is_err());
        assert!(simulate_swaps(&SwapSimConfig {
            parts: vec![2, 2],
            schedule: ScheduleKind::ZOrder,
            policy: PolicyKind::Lru,
            buffer_fraction: 0.0,
            virtual_iters: 1,
        })
        .is_err());
    }

    #[test]
    fn swap_counts_are_deterministic() {
        let a = sim(4, ScheduleKind::ZOrder, PolicyKind::Mru, 0.5);
        let b = sim(4, ScheduleKind::ZOrder, PolicyKind::Mru, 0.5);
        assert_eq!(a.swaps_per_iteration, b.swaps_per_iteration);
    }
}
