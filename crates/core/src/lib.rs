//! **2PCP** — two-phase, block-based CP decomposition for dense tensors
//! that do not fit in memory, with I/O-reducing update schedules and
//! schedule-aware buffer replacement.
//!
//! Reproduction of Li, Huang, Candan & Sapino, *"2PCP: Two-Phase CP
//! Decomposition for Billion-Scale Dense Tensors"*, ICDE 2016.
//!
//! # The algorithm
//!
//! * **Phase 1** ([`phase1`]): the input tensor is partitioned into a grid
//!   of sub-tensors (blocks); each block is independently decomposed by
//!   CP-ALS — in parallel threads or on the bundled MapReduce substrate —
//!   producing per-block *sub-factors* `U(i)_k`.
//! * **Phase 2** ([`phase2`]): the sub-factors are stitched into global
//!   factor matrices by iterative refinement of the update rule
//!   `A(i)(kᵢ) ← T(i)(kᵢ) · S(i)(kᵢ)⁻¹` (paper eq. 3), executed
//!   *out-of-core*: factor data lives in a [`tpcp_storage`] unit store and
//!   is staged through a byte-budgeted buffer pool. The order of updates is
//!   a [`tpcp_schedule`] update schedule (mode-centric, fiber, Z- or
//!   Hilbert-order) and evictions follow LRU, MRU or the forward-looking
//!   schedule-aware policy.
//!
//! # Quick start
//!
//! ```
//! use twopcp::{TwoPcp, TwoPcpConfig};
//! use tpcp_schedule::ScheduleKind;
//! use tpcp_storage::PolicyKind;
//!
//! // A small dense tensor (random low-rank for the example).
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x = tpcp_tensor::random_dense(&[16, 16, 16], &mut rng);
//!
//! let config = TwoPcpConfig::new(4)          // rank F = 4
//!     .parts(vec![2, 2, 2])                   // 2×2×2 block grid
//!     .schedule(ScheduleKind::HilbertOrder)   // HO traversal
//!     .policy(PolicyKind::Forward)            // forward-looking eviction
//!     .buffer_fraction(0.5);                  // half the total working set
//!
//! let outcome = TwoPcp::new(config).decompose_dense(&x).unwrap();
//! println!("fit = {:.3}, swaps = {}", outcome.fit, outcome.phase2.io.swaps());
//! ```

pub mod accuracy;
pub mod naive;
pub mod phase1;
pub mod phase2;
pub mod swapsim;

mod config;
mod driver;
mod model;
mod pq;
mod update;

pub use config::{
    ConfigError, EnvOverrides, InitKind, Phase1Options, TwoPcpConfig, TwoPcpConfigBuilder,
    SERVE_ADDR_ENV_VAR,
};
pub use driver::{TwoPcp, TwoPcpOutcome};
pub use model::{
    rank_fiber, FactorView, Model, ModelMeta, Residency, MODEL_EXT, MODEL_MAGIC, MODEL_VERSION,
};
pub use naive::{naive_cp_out_of_core, NaiveOocOptions, NaiveOocReport};
pub use phase1::{
    run_phase1_dense, run_phase1_mapreduce, run_phase1_mapreduce_source, run_phase1_source,
    run_phase1_sparse, Phase1Result,
};
pub use phase2::{refine, RefineOutcome, RefineStats};
pub use pq::{PqCache, QHadamardScratch, QHadamardStats};
pub use swapsim::{simulate_swaps, unit_bytes, SwapReport, SwapSimConfig};
// Re-exported so prefetch, the kernel backend and the compression
// pipeline can be configured without importing `tpcp-storage` /
// `tpcp-linalg` / `tpcp-cp` / `tpcp-compress` directly.
pub use tpcp_compress::CompressProvenance;
pub use tpcp_cp::{CompressOptions, COMPRESS_ENV_VAR};
pub use tpcp_linalg::{KernelKind, KERNEL_ENV_VAR};
pub use tpcp_storage::PrefetchConfig;

/// Errors surfaced by the 2PCP pipeline.
#[derive(Debug)]
pub enum TwoPcpError {
    /// Linear-algebra failure.
    Linalg(tpcp_linalg::LinalgError),
    /// Tensor-shape failure.
    Tensor(tpcp_tensor::TensorError),
    /// CP/ALS failure.
    Cp(tpcp_cp::CpError),
    /// Storage / buffer-pool failure.
    Storage(tpcp_storage::StorageError),
    /// Streaming block-ingest failure.
    Ingest(tpcp_partition::SourceError),
    /// MapReduce substrate failure.
    MapReduce(tpcp_mapreduce::MrError),
    /// A parallel worker panicked; the panic was caught by [`tpcp_par`]
    /// and surfaced as this error instead of unwinding the process.
    WorkerPanic {
        /// The stringified panic payload.
        message: String,
    },
    /// Invalid configuration.
    Config {
        /// Explanation of the invalid setting.
        reason: String,
    },
    /// Malformed model container or invalid model query.
    Model {
        /// Explanation of the failure.
        reason: String,
    },
}

impl std::fmt::Display for TwoPcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TwoPcpError::Linalg(e) => write!(f, "linalg: {e}"),
            TwoPcpError::Tensor(e) => write!(f, "tensor: {e}"),
            TwoPcpError::Cp(e) => write!(f, "cp: {e}"),
            TwoPcpError::Storage(e) => write!(f, "storage: {e}"),
            TwoPcpError::Ingest(e) => write!(f, "ingest: {e}"),
            TwoPcpError::MapReduce(e) => write!(f, "mapreduce: {e}"),
            TwoPcpError::WorkerPanic { message } => write!(f, "worker panicked: {message}"),
            TwoPcpError::Config { reason } => write!(f, "config: {reason}"),
            TwoPcpError::Model { reason } => write!(f, "model: {reason}"),
        }
    }
}

impl std::error::Error for TwoPcpError {}

impl From<tpcp_linalg::LinalgError> for TwoPcpError {
    fn from(e: tpcp_linalg::LinalgError) -> Self {
        TwoPcpError::Linalg(e)
    }
}
impl From<tpcp_tensor::TensorError> for TwoPcpError {
    fn from(e: tpcp_tensor::TensorError) -> Self {
        TwoPcpError::Tensor(e)
    }
}
impl From<tpcp_cp::CpError> for TwoPcpError {
    fn from(e: tpcp_cp::CpError) -> Self {
        TwoPcpError::Cp(e)
    }
}
impl From<tpcp_compress::CompressError> for TwoPcpError {
    fn from(e: tpcp_compress::CompressError) -> Self {
        match e {
            tpcp_compress::CompressError::Cp(inner) => TwoPcpError::Cp(inner),
            tpcp_compress::CompressError::Source(inner) => TwoPcpError::Ingest(inner),
            tpcp_compress::CompressError::Unsupported { reason } => TwoPcpError::Config { reason },
        }
    }
}
impl From<tpcp_storage::StorageError> for TwoPcpError {
    fn from(e: tpcp_storage::StorageError) -> Self {
        TwoPcpError::Storage(e)
    }
}
impl From<std::io::Error> for TwoPcpError {
    fn from(e: std::io::Error) -> Self {
        TwoPcpError::Storage(tpcp_storage::StorageError::Io(e))
    }
}
impl From<tpcp_partition::SourceError> for TwoPcpError {
    fn from(e: tpcp_partition::SourceError) -> Self {
        TwoPcpError::Ingest(e)
    }
}
impl From<tpcp_mapreduce::MrError> for TwoPcpError {
    fn from(e: tpcp_mapreduce::MrError) -> Self {
        TwoPcpError::MapReduce(e)
    }
}
impl From<tpcp_par::ParError<TwoPcpError>> for TwoPcpError {
    fn from(e: tpcp_par::ParError<TwoPcpError>) -> Self {
        match e {
            tpcp_par::ParError::Worker(inner) => inner,
            tpcp_par::ParError::Panic { message } => TwoPcpError::WorkerPanic { message },
        }
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TwoPcpError>;
