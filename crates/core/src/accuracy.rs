//! Exact decomposition-accuracy evaluation (paper §III-B).
//!
//! `accuracy(X, X̃) = 1 − ‖X̃ − X‖ / ‖X‖`. The surrogate fit used for
//! Phase-2 stopping (see [`crate::pq::PqCache::surrogate_fit`]) measures
//! agreement with the Phase-1 reconstruction; the functions here measure
//! agreement with the *original* tensor, which is what the paper's
//! accuracy figures (Figure 13) report.

use crate::Result;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_partition::{Block, BlockSource, Grid};
use tpcp_tensor::{DenseTensor, SparseTensor};

/// Exact fit of `model` against a dense tensor.
///
/// # Errors
/// Shape mismatches between model and tensor.
pub fn exact_fit_dense(model: &CpModel, x: &DenseTensor) -> Result<f64> {
    model.fit_dense(x).map_err(crate::TwoPcpError::from)
}

/// Exact fit of `model` against a sparse tensor.
///
/// # Errors
/// Shape mismatches between model and tensor.
pub fn exact_fit_sparse(model: &CpModel, x: &SparseTensor) -> Result<f64> {
    model.fit_sparse(x).map_err(crate::TwoPcpError::from)
}

/// The sub-model of `model` restricted to one grid block: each factor is
/// sliced to the block's row range (paper eq. 2 —
/// `X_k ≈ I ×₁ A(1)(k₁) … ×_N A(N)(k_N)`).
pub fn block_sub_model(model: &CpModel, grid: &Grid, block: usize) -> CpModel {
    let coords = grid.block_coords(block);
    let factors: Vec<Mat> = model
        .factors
        .iter()
        .enumerate()
        .map(|(mode, f)| {
            let range = grid.part_range(mode, coords[mode]);
            f.row_block(range.start, range.end - range.start)
        })
        .collect();
    CpModel {
        weights: model.weights.clone(),
        factors,
    }
}

/// Accumulator for the blockwise exact fit — the *one* range-walk both
/// the eager and the streaming entry points share.
#[derive(Default)]
struct FitAcc {
    err_sq: f64,
    x_sq: f64,
}

impl FitAcc {
    fn add_dense(
        &mut self,
        model: &CpModel,
        grid: &Grid,
        lin: usize,
        block: &DenseTensor,
    ) -> Result<()> {
        let sub = block_sub_model(model, grid, lin);
        let b_sq = block.fro_norm_sq();
        let inner = sub.inner_dense(block).map_err(crate::TwoPcpError::from)?;
        self.push(b_sq, inner, sub.norm_sq());
        Ok(())
    }

    fn add_sparse(
        &mut self,
        model: &CpModel,
        grid: &Grid,
        lin: usize,
        block: &SparseTensor,
    ) -> Result<()> {
        let sub = block_sub_model(model, grid, lin);
        let b_sq = block.fro_norm_sq();
        let inner = sub.inner_sparse(block).map_err(crate::TwoPcpError::from)?;
        self.push(b_sq, inner, sub.norm_sq());
        Ok(())
    }

    fn push(&mut self, b_sq: f64, inner: f64, m_sq: f64) {
        self.err_sq += (b_sq - 2.0 * inner + m_sq).max(0.0);
        self.x_sq += b_sq;
    }

    fn fit(self) -> f64 {
        if self.x_sq <= 0.0 {
            return if self.err_sq <= 1e-30 {
                1.0
            } else {
                f64::NEG_INFINITY
            };
        }
        1.0 - (self.err_sq.sqrt() / self.x_sq.sqrt())
    }
}

/// Exact fit computed blockwise against dense blocks.
///
/// `blocks` must be in linear block-id order, as produced by
/// [`tpcp_partition::split_dense`]. For tensors that are never
/// materialised, use [`blockwise_fit_source`] instead.
///
/// # Errors
/// Shape mismatches between the model slices and the blocks.
pub fn blockwise_fit_dense(model: &CpModel, grid: &Grid, blocks: &[DenseTensor]) -> Result<f64> {
    let mut acc = FitAcc::default();
    for (lin, block) in blocks.iter().enumerate() {
        acc.add_dense(model, grid, lin, block)?;
    }
    Ok(acc.fit())
}

/// Exact fit computed by re-streaming the ingest source blockwise — only
/// one block of `X` is resident at a time, so the accuracy pass obeys the
/// same memory bound as streaming Phase 1. Note the blockwise error sum
/// can differ from the monolithic [`exact_fit_dense`] in the last few
/// floating-point digits (different summation order).
///
/// # Errors
/// Source failures and shape mismatches between model slices and blocks.
pub fn blockwise_fit_source(
    model: &CpModel,
    grid: &Grid,
    src: &mut dyn BlockSource,
) -> Result<f64> {
    let mut acc = FitAcc::default();
    for lin in 0..grid.num_blocks() {
        match src.load_block(grid, lin)? {
            Block::Dense(b) => acc.add_dense(model, grid, lin, &b)?,
            Block::Sparse(b) => acc.add_sparse(model, grid, lin, &b)?,
        }
    }
    Ok(acc.fit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tpcp_partition::split_dense;
    use tpcp_tensor::random_factor;

    fn model_and_tensor(dims: &[usize], f: usize, seed: u64) -> (CpModel, DenseTensor) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        let model = CpModel::new(vec![1.0; f], factors).unwrap();
        let t = model.reconstruct_dense();
        (model, t)
    }

    #[test]
    fn blockwise_fit_matches_global_fit() {
        let (model, x) = model_and_tensor(&[8, 6, 4], 3, 2);
        let grid = Grid::new(x.dims(), &[2, 3, 2]);
        let blocks = split_dense(&x, &grid);
        let global = exact_fit_dense(&model, &x).unwrap();
        let blockwise = blockwise_fit_dense(&model, &grid, &blocks).unwrap();
        assert!((global - blockwise).abs() < 1e-6, "{global} vs {blockwise}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn block_sub_model_reconstructs_the_block() {
        let (model, x) = model_and_tensor(&[6, 6], 2, 5);
        let grid = Grid::uniform(x.dims(), 2);
        let blocks = split_dense(&x, &grid);
        for lin in 0..grid.num_blocks() {
            let sub = block_sub_model(&model, &grid, lin);
            let recon = sub.reconstruct_dense();
            for (a, b) in recon.as_slice().iter().zip(blocks[lin].as_slice()) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn imperfect_model_fits_below_one() {
        let (model, mut x) = model_and_tensor(&[6, 6, 6], 2, 9);
        for v in x.as_mut_slice().iter_mut().step_by(3) {
            *v += 0.5;
        }
        let grid = Grid::uniform(x.dims(), 2);
        let blocks = split_dense(&x, &grid);
        let fit = blockwise_fit_dense(&model, &grid, &blocks).unwrap();
        assert!(fit < 0.999);
        assert!(fit > 0.0);
    }

    #[test]
    fn streaming_fit_matches_eager_blockwise_fit() {
        let (model, x) = model_and_tensor(&[8, 6, 4], 3, 4);
        let grid = Grid::new(x.dims(), &[2, 3, 2]);
        let blocks = split_dense(&x, &grid);
        let eager = blockwise_fit_dense(&model, &grid, &blocks).unwrap();
        let mut dsrc = tpcp_partition::DenseMemorySource::new(&x);
        let streamed = blockwise_fit_source(&model, &grid, &mut dsrc).unwrap();
        // Same blocks, same accumulation order — bitwise equal.
        assert_eq!(eager, streamed);
        // The sparse view of the same tensor agrees to rounding.
        let sp = SparseTensor::from_dense(&x, 0.0);
        let mut ssrc = tpcp_partition::SparseMemorySource::new(&sp);
        let sparse_streamed = blockwise_fit_source(&model, &grid, &mut ssrc).unwrap();
        assert!((streamed - sparse_streamed).abs() < 1e-9);
    }

    #[test]
    fn sparse_fit_agrees_with_dense() {
        let (model, x) = model_and_tensor(&[5, 5, 5], 2, 3);
        let sp = SparseTensor::from_dense(&x, 0.0);
        let d = exact_fit_dense(&model, &x).unwrap();
        let s = exact_fit_sparse(&model, &sp).unwrap();
        assert!((d - s).abs() < 1e-9);
    }
}
