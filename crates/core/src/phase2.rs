//! Phase 2: out-of-core iterative refinement.
//!
//! Executes the update schedule over the unit store through a
//! byte-budgeted buffer pool (paper §V–VII):
//!
//! * every step `acquire`s (and pins) its data-access units — one for a
//!   mode-centric step, `N` for a block-centric step;
//! * sub-factors are revised by the `T·S⁻¹` rule and the `P`/`Q` caches
//!   refreshed in place;
//! * convergence is evaluated once per *virtual iteration* (`Σᵢ Kᵢ` steps,
//!   paper Def. 3) against the **surrogate fit** — the accuracy of the
//!   current global factors with respect to the Phase-1 reconstruction,
//!   computable from the caches with zero extra I/O;
//! * all disk traffic is tallied per virtual iteration, producing exactly
//!   the "data swaps per iteration" series of the paper's Figure 12;
//! * the same schedule determinism that makes the `Forward` policy
//!   Belady-exact drives an **asynchronous prefetch pipeline**
//!   ([`TwoPcpConfig::prefetch`]): a background worker stages the units
//!   upcoming steps will miss, so disk reads overlap the `T·S⁻¹` compute
//!   instead of stalling it. Results and swap counts are bit-identical
//!   with the pipeline on or off; only [`IoStats::stall_ns`] shrinks.

use crate::config::TwoPcpConfig;
use crate::pq::{PqCache, QHadamardScratch, QHadamardStats};
use crate::update::{commit_sub_factor_update, compute_sub_factor_update};
use crate::Result;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_partition::Grid;
use tpcp_schedule::{build_cycle, virtual_iteration_len, CycleOracle, UnitId};
use tpcp_storage::{capacity_for_fraction, BufferPool, IoStats, PrefetchSource, UnitStore};

/// Statistics of a refinement run.
#[derive(Clone, Debug)]
pub struct RefineStats {
    /// Total buffer-pool I/O statistics.
    pub io: IoStats,
    /// Data swaps (unit fetches) in each virtual iteration.
    pub swaps_per_iteration: Vec<u64>,
    /// Surrogate fit after each virtual iteration.
    pub fit_trace: Vec<f64>,
    /// Virtual iterations executed.
    pub virtual_iterations: usize,
    /// Whether the tolerance was met before the iteration budget.
    pub converged: bool,
    /// Virtual iterations covering the first full schedule cycle
    /// (`⌈cycle/ΣKᵢ⌉`) — the cold-start window to exclude when reporting
    /// steady-state swaps.
    pub warmup_iterations: usize,
    /// Hotness of the `Q`-Hadamard fold across every sub-factor update
    /// (calls + wall ns; ROADMAP item 3's "measure first" question).
    pub q_hadamard: QHadamardStats,
}

impl RefineStats {
    /// Mean swaps per virtual iteration after the cold-start window (the
    /// steady-state quantity Figure 12 reports). Falls back to the overall
    /// mean when the run was shorter than one full cycle.
    pub fn steady_swaps_per_iteration(&self) -> f64 {
        steady_mean(&self.swaps_per_iteration, self.warmup_iterations)
    }
}

/// Mean of `swaps[warmup..]`, falling back to the overall mean for short
/// runs.
pub(crate) fn steady_mean(swaps: &[u64], warmup: usize) -> f64 {
    let tail = if swaps.len() > warmup {
        &swaps[warmup..]
    } else {
        swaps
    };
    if tail.is_empty() {
        return 0.0;
    }
    tail.iter().sum::<u64>() as f64 / tail.len() as f64
}

/// Outcome of [`refine`]: the stitched model, run statistics and the store
/// (returned so callers can inspect or reuse the refined units).
pub struct RefineOutcome<S> {
    /// The global CP model assembled from the refined sub-factors.
    pub model: CpModel,
    /// Run statistics.
    pub stats: RefineStats,
    /// The backing store, flushed.
    pub store: S,
}

impl<S> std::fmt::Debug for RefineOutcome<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefineOutcome")
            .field("model_dims", &self.model.dims())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// The exact byte size of unit `⟨mode, k⟩` under the paper's §VI space
/// formula: `(Iᵢ/Kᵢ rows) × F doubles` for the global sub-factor plus one
/// equal-shaped sub-factor per block of the slab. This is what Phase 1
/// materialises, so the Phase-2 buffer can be sized *before* touching the
/// store — no sizing pre-scan outside the buffer pool.
pub(crate) fn expected_unit_bytes(grid: &Grid, rank: usize, unit: UnitId) -> usize {
    let mode = usize::from(unit.mode);
    grid.part_len(mode, unit.part as usize) * rank * (1 + grid.slab_len(mode)) * 8
}

/// Runs the Phase-2 refinement over units previously written by Phase 1.
///
/// `u_norm_sq` holds `‖X̂₁_k‖²` per block (from
/// [`crate::phase1::Phase1Result`]).
///
/// # Errors
/// Storage failures (including a buffer too small for one step's working
/// set) and numerical failures in the update solves.
pub fn refine<S: UnitStore + PrefetchSource>(
    grid: &Grid,
    store: S,
    cfg: &TwoPcpConfig,
    u_norm_sq: &[f64],
) -> Result<RefineOutcome<S>> {
    // ---- Space requirement (analytic, paper §VI formula). ----------------
    let unit_ids: Vec<UnitId> = (0..grid.num_units())
        .map(|lin| UnitId::from_linear(grid, lin))
        .collect();
    let mut total_bytes = 0usize;
    let mut max_unit_bytes = 0usize;
    for &unit_id in &unit_ids {
        let bytes = expected_unit_bytes(grid, cfg.rank, unit_id);
        total_bytes += bytes;
        max_unit_bytes = max_unit_bytes.max(bytes);
    }

    let capacity = if cfg.buffer_fraction >= 1.0 {
        usize::MAX
    } else {
        // For non-cubic tensors the units are unevenly sized; the buffer
        // must at least hold the single largest working unit or the
        // algorithm cannot execute at all (the paper's fractions implicitly
        // assume this floor).
        capacity_for_fraction(total_bytes, cfg.buffer_fraction).max(max_unit_bytes)
    };

    // ---- Schedule, oracle, pool (prefetch pipeline bound here). ---------
    let cycle = build_cycle(grid, cfg.schedule);
    let oracle = CycleOracle::new(grid, &cycle);
    let bound = oracle.bind(grid);
    let mut pool = BufferPool::new(store, capacity, cfg.policy)
        .with_oracle(&bound)
        .with_prefetch(&bound, cfg.prefetch);

    // ---- Initialise the P/Q caches with one pass *through the pool*, so
    // the first cycle starts warm and the scan's fetches (and stalls) are
    // tallied in the run's `IoStats`. The scan itself is pipelined by
    // hinting the next few units ahead of each read.
    let mut pq = PqCache::new(grid, cfg.rank);
    for (lin, &unit_id) in unit_ids.iter().enumerate() {
        let hint_end = (lin + 1 + cfg.prefetch.depth).min(unit_ids.len());
        pool.prefetch_units(&unit_ids[(lin + 1).min(hint_end)..hint_end]);
        let hold = [unit_id];
        pool.acquire(&hold)?;
        let result = (|| -> Result<(Mat, Vec<(usize, Mat)>)> {
            let data = pool.get(unit_id)?;
            debug_assert_eq!(
                data.payload_bytes(),
                expected_unit_bytes(grid, cfg.rank, unit_id),
                "stored unit diverges from the analytic space formula"
            );
            let q = data.factor.gram_kernel(&cfg.par, cfg.kernel);
            let mut ps = Vec::with_capacity(data.sub_factors.len());
            for (block, u) in &data.sub_factors {
                ps.push((
                    *block as usize,
                    u.t_matmul_kernel(&data.factor, &cfg.par, cfg.kernel)?,
                ));
            }
            Ok((q, ps))
        })();
        pool.release(&hold);
        let (q, ps) = result?;
        pq.set_q(grid, unit_id, q);
        let mode = usize::from(unit_id.mode);
        for (block, p) in ps {
            pq.set_p(block, mode, p);
        }
    }

    // Virtual iterations are counted in sub-factor updates (paper Def. 3):
    // a mode-centric step is one update, a block step is N updates.
    let vlen = virtual_iteration_len(grid) as u64;
    let cycle_len = cycle.len() as u64;
    let cycle_updates: u64 = cycle.iter().map(|s| s.update_count(grid) as u64).sum();

    let mut fit_trace = Vec::new();
    let mut swaps_per_iteration = Vec::new();
    let mut converged = false;
    let mut prev_fit = f64::NEG_INFINITY;
    let mut pos: u64 = 0;
    let mut updates_done: u64 = 0;
    let mut iterations = 0usize;
    // Q-Hadamard fold prefixes, reused across each unit's slab scan
    // (cleared inside `compute_sub_factor_update`; kept here only so the
    // allocation survives the loop).
    let mut q_scratch = QHadamardScratch::new();

    'outer: while iterations < cfg.max_virtual_iters {
        let swaps_before = pool.stats().fetches;
        let quota = (iterations as u64 + 1) * vlen;
        while updates_done < quota {
            let step = cycle[(pos % cycle_len) as usize];
            pool.set_position(pos);
            // Algorithm 2 processes the modes of a block position one at a
            // time, so only one data-access unit needs to be resident per
            // sub-factor update — the buffer can be as small as one unit.
            for unit_id in step.units(grid) {
                let hold = [unit_id];
                pool.acquire(&hold)?;
                let result = (|| -> Result<()> {
                    let a_new = {
                        let unit = pool.get(unit_id)?;
                        compute_sub_factor_update(
                            grid,
                            unit,
                            &pq,
                            cfg.ridge,
                            &cfg.par,
                            cfg.kernel,
                            &mut q_scratch,
                        )?
                    };
                    let unit = pool.get_mut(unit_id)?;
                    commit_sub_factor_update(grid, unit, &mut pq, a_new, &cfg.par, cfg.kernel)
                })();
                pool.release(&hold);
                result?;
                updates_done += 1;
            }
            pos += 1;
        }
        iterations += 1;
        swaps_per_iteration.push(pool.stats().fetches - swaps_before);
        let fit = pq.surrogate_fit(grid, u_norm_sq)?;
        fit_trace.push(fit);
        // Termination is evaluated per virtual iteration (paper Def. 3 /
        // Figure 7) but never before one full tensor-filling cycle: a
        // block-centric virtual iteration touches only ΣKᵢ/N block
        // positions, and declaring convergence before every block has
        // contributed once would freeze the factors at whatever the first
        // visited corner of the tensor suggested.
        let min_iters = (cycle_updates as usize).div_ceil(vlen as usize);
        if iterations > min_iters && (fit - prev_fit).abs() < cfg.tol {
            converged = true;
            break 'outer;
        }
        prev_fit = fit;
    }

    // ---- Finalise. --------------------------------------------------------
    let io = pool.stats();
    let mut store = pool.into_store()?;
    let mut factors = Vec::with_capacity(grid.order());
    for mode in 0..grid.order() {
        let parts: Vec<Mat> = (0..grid.parts()[mode])
            .map(|k| store.read(UnitId::new(mode, k)).map(|d| d.factor))
            .collect::<std::result::Result<_, _>>()?;
        let refs: Vec<&Mat> = parts.iter().collect();
        factors.push(Mat::vstack(&refs));
    }
    let mut model = CpModel::new(vec![1.0; cfg.rank], factors)?;
    model.normalize();

    Ok(RefineOutcome {
        model,
        stats: RefineStats {
            io,
            swaps_per_iteration,
            fit_trace,
            virtual_iterations: iterations,
            converged,
            warmup_iterations: (cycle_updates as usize).div_ceil(vlen as usize),
            q_hadamard: q_scratch.stats(),
        },
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::run_phase1_dense;
    use rand::SeedableRng;
    use tpcp_schedule::ScheduleKind;
    use tpcp_storage::{MemStore, PolicyKind};
    use tpcp_tensor::{random_factor, DenseTensor};

    fn low_rank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        CpModel::new(vec![1.0; f], factors)
            .unwrap()
            .reconstruct_dense()
    }

    fn run(cfg: TwoPcpConfig, x: &DenseTensor) -> (RefineOutcome<MemStore>, f64) {
        let mut store = MemStore::new();
        let p1 = run_phase1_dense(x, &cfg, &mut store).unwrap();
        let outcome = refine(&p1.grid, store, &cfg, &p1.u_norm_sq).unwrap();
        let fit = outcome.model.fit_dense(x).unwrap();
        (outcome, fit)
    }

    #[test]
    fn refinement_reaches_high_fit_on_low_rank_data() {
        let x = low_rank(&[12, 12, 12], 3, 42);
        let cfg = TwoPcpConfig::new(3)
            .parts(vec![2])
            .max_virtual_iters(60)
            .tol(1e-7);
        let (outcome, fit) = run(cfg, &x);
        assert!(fit > 0.98, "exact fit {fit} too low");
        // The surrogate is capped by Phase-1 block quality (a single global
        // factor set cannot perfectly reproduce 8 independent block models).
        assert!(outcome.stats.fit_trace.last().unwrap() > &0.95);
    }

    #[test]
    fn all_schedules_converge_to_similar_fit() {
        let x = low_rank(&[8, 8, 8], 2, 7);
        let mut fits = Vec::new();
        for kind in ScheduleKind::ALL {
            let cfg = TwoPcpConfig::new(2)
                .parts(vec![2])
                .schedule(kind)
                .max_virtual_iters(40)
                .tol(1e-9);
            let (_, fit) = run(cfg, &x);
            fits.push((kind, fit));
        }
        for (kind, fit) in &fits {
            assert!(*fit > 0.95, "{kind} fit {fit}");
        }
    }

    #[test]
    fn surrogate_fit_is_monotonish_and_high_at_end() {
        let x = low_rank(&[10, 10, 10], 2, 3);
        let cfg = TwoPcpConfig::new(2)
            .parts(vec![2])
            .max_virtual_iters(50)
            .tol(0.0);
        let (outcome, _) = run(cfg, &x);
        let trace = &outcome.stats.fit_trace;
        assert!(
            trace.last().unwrap() > &0.95,
            "surrogate {:?}",
            trace.last()
        );
        // Allow small dips but require overall improvement.
        assert!(trace.last().unwrap() >= &(trace[0] - 1e-6));
    }

    #[test]
    fn constrained_buffer_produces_swaps_and_same_result() {
        let x = low_rank(&[12, 12, 12], 2, 5);
        let base = TwoPcpConfig::new(2)
            .parts(vec![2])
            .max_virtual_iters(10)
            .tol(0.0)
            .schedule(ScheduleKind::HilbertOrder)
            .policy(PolicyKind::Forward);

        let (unbounded, fit_unbounded) = run(base.clone(), &x);
        assert_eq!(
            unbounded.stats.io.fetches, 6,
            "with an unbounded buffer each unit is fetched exactly once"
        );

        let (bounded, fit_bounded) = run(base.buffer_fraction(0.5), &x);
        assert!(bounded.stats.io.fetches > 6, "restricted buffer must swap");
        assert!(bounded.stats.io.evictions > 0);
        // The math is identical regardless of buffering.
        assert!(
            (fit_unbounded - fit_bounded).abs() < 1e-9,
            "{fit_unbounded} vs {fit_bounded}"
        );
    }

    #[test]
    fn mode_centric_equals_block_centric_per_unit_updates() {
        // Both schedule families apply the same update rule; with an
        // unbounded buffer and identical seeds, final fits must be close
        // (they differ only in update interleaving).
        let x = low_rank(&[8, 8, 8], 2, 9);
        let cfg_mc = TwoPcpConfig::new(2)
            .parts(vec![2])
            .schedule(ScheduleKind::ModeCentric)
            .max_virtual_iters(60)
            .tol(1e-10);
        let cfg_ho = cfg_mc.clone().schedule(ScheduleKind::HilbertOrder);
        let (_, fit_mc) = run(cfg_mc, &x);
        let (_, fit_ho) = run(cfg_ho, &x);
        assert!((fit_mc - fit_ho).abs() < 0.05, "{fit_mc} vs {fit_ho}");
    }

    #[test]
    fn swaps_counted_per_virtual_iteration() {
        let x = low_rank(&[12, 12, 12], 2, 1);
        let cfg = TwoPcpConfig::new(2)
            .parts(vec![2])
            .buffer_fraction(0.34)
            .schedule(ScheduleKind::FiberOrder)
            .policy(PolicyKind::Lru)
            .max_virtual_iters(5)
            .tol(0.0);
        let (outcome, _) = run(cfg, &x);
        assert_eq!(outcome.stats.swaps_per_iteration.len(), 5);
        // The P/Q-initialisation scan runs through the pool: its ΣKᵢ = 6
        // cold fetches are tallied in `io` but precede iteration 0.
        assert_eq!(
            outcome.stats.swaps_per_iteration.iter().sum::<u64>() + 6,
            outcome.stats.io.fetches
        );
        assert!(outcome.stats.steady_swaps_per_iteration() > 0.0);
        // Every sub-factor update folds Q once per block of its slab.
        assert!(outcome.stats.q_hadamard.calls > 0);
    }

    #[test]
    fn converges_early_with_loose_tolerance() {
        let x = low_rank(&[8, 8, 8], 2, 13);
        let cfg = TwoPcpConfig::new(2)
            .parts(vec![2])
            .max_virtual_iters(100)
            .tol(0.5); // absurdly loose: stops right after the first cycle
        let (outcome, _) = run(cfg, &x);
        assert!(outcome.stats.converged);
        // One HO cycle = 8 blocks × 3 updates / 6 per iteration = 4 virtual
        // iterations; convergence is first allowed at iteration 5.
        assert_eq!(outcome.stats.virtual_iterations, 5);
    }

    #[test]
    fn minuscule_buffer_degrades_to_one_unit_and_thrashes() {
        // The capacity floor guarantees the single largest unit fits, so
        // even an absurd fraction runs — at one swap per unit access.
        let x = low_rank(&[8, 8, 8], 2, 2);
        let cfg = TwoPcpConfig::new(2)
            .parts(vec![2])
            .buffer_fraction(0.01)
            .max_virtual_iters(4)
            .tol(0.0);
        let mut store = MemStore::new();
        let p1 = run_phase1_dense(&x, &cfg, &mut store).unwrap();
        let outcome = refine(&p1.grid, store, &cfg, &p1.u_norm_sq).unwrap();
        let io = outcome.stats.io;
        // 4 virtual iterations × ΣKᵢ = 6 updates each = 24 unit accesses,
        // plus the 6-unit P/Q-initialisation scan through the pool; with a
        // one-unit buffer nearly every access misses.
        assert_eq!(io.hits + io.fetches, 4 * 6 + 6);
        assert!(io.fetches >= 26, "expected thrashing, got {io:?}");
    }
}
