//! Compress-then-decompose equivalence and determinism contract.
//!
//! The compressed pipeline is opt-in and approximate, but its contract is
//! strict where it matters:
//!
//! * on exactly-low-mlrank data it must recover (essentially) the exact
//!   path's fit, across orders 3–5 and ragged shapes;
//! * on noisy data the reported retained energy must bound what the
//!   truncation actually discarded;
//! * the whole pipeline — sketches, eigensolves, core ALS, polish — is
//!   bitwise run-to-run repeatable and invariant across thread budgets
//!   {1, 2, 4, 7} and both kernel backends;
//! * with no [`CompressOptions`] configured, the driver's default path is
//!   bitwise identical to a build that has never heard of compression
//!   (the `TPCP_COMPRESS=0` CI leg pins the same thing end to end).

use rand::SeedableRng;
use tpcp_compress::{compress_cp_als_dense, compress_decompose};
use tpcp_cp::{cp_als_dense, AlsOptions, CpModel};
use tpcp_linalg::{KernelKind, Mat};
use tpcp_par::ParConfig;
use tpcp_partition::{DenseMemorySource, Grid};
use tpcp_tensor::{random_factor, DenseTensor};
use twopcp::{CompressOptions, TwoPcp, TwoPcpConfig};

/// A CP-structured tensor of rank `f`: multilinear rank ≤ `f` per mode
/// *and* exactly fittable by a rank-`f` CP model.
fn low_mlrank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    CpModel::new(vec![1.0; f], factors)
        .unwrap()
        .reconstruct_dense()
}

fn options(rank: usize) -> AlsOptions {
    AlsOptions::builder()
        .rank(rank)
        .max_iters(60)
        .tol(1e-9)
        .seed(7)
        .build()
        .unwrap()
}

#[test]
fn orders_3_to_5_ragged_recover_the_exact_fit() {
    // Ragged shapes on purpose: no dimension divides another.
    let shapes: [&[usize]; 3] = [&[11, 7, 5], &[9, 8, 6, 5], &[7, 6, 5, 4, 3]];
    for dims in shapes {
        let f = 3;
        let x = low_mlrank(dims, f, 42 + dims.len() as u64);
        let exact = cp_als_dense(&x, &options(f)).unwrap();
        let exact_fit = *exact.fit_trace.last().unwrap();

        let mut opts = options(f);
        // A few polish sweeps: the core ALS solves the same problem in the
        // compressed basis, but matching a fully converged direct ALS to
        // 1e-6 takes more than the default single exact sweep.
        opts.compress = Some(
            CompressOptions::builder()
                .mlrank(vec![f; dims.len()])
                .refine_iters(12)
                .build()
                .unwrap(),
        );
        let out = compress_cp_als_dense(&x, &opts).unwrap();
        let fit = out.model.fit_dense(&x).unwrap();
        assert!(
            fit >= exact_fit - 1e-6,
            "order {}: compressed fit {fit} below exact {exact_fit}",
            dims.len()
        );
        assert_eq!(out.provenance.core_shape, vec![f; dims.len()]);
    }
}

#[test]
fn noisy_data_energy_bound_holds() {
    // Low-mlrank signal plus small dense noise: the truncated tail is at
    // most the noise energy, so retained energy must sit above the
    // signal's share and never above 1.
    let dims = [12, 10, 8];
    let f = 3;
    let signal = low_mlrank(&dims, f, 9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let noise = tpcp_tensor::random_dense(&dims, &mut rng);
    let signal_sq: f64 = signal.as_slice().iter().map(|v| v * v).sum();
    let noise_sq: f64 = noise.as_slice().iter().map(|v| v * v).sum();
    // Scale the noise to 1% of the signal energy.
    let scale = (0.01 * signal_sq / noise_sq).sqrt();
    let data: Vec<f64> = signal
        .as_slice()
        .iter()
        .zip(noise.as_slice())
        .map(|(s, n)| s + scale * n)
        .collect();
    let x = DenseTensor::from_vec(&dims, data);

    let mut opts = options(f);
    opts.compress = Some(
        CompressOptions::builder()
            .mlrank(vec![f; dims.len()])
            .build()
            .unwrap(),
    );
    let out = compress_cp_als_dense(&x, &opts).unwrap();
    let e = out.provenance.energy;
    // ‖noise‖² ≈ 1% of ‖signal‖² ⇒ each mode discards at most ~1/101 of
    // the total; order × that bounds the reported multi-mode discard.
    assert!(e <= 1.0, "energy {e} above 1");
    assert!(e >= 1.0 - 0.04, "energy {e} claims too much was discarded");
    // And the model still explains the signal through the noise floor.
    let fit = out.model.fit_dense(&x).unwrap();
    assert!(fit > 0.85, "noisy fit {fit}");
}

/// Factor/weight/provenance bits of one blocked run.
fn pipeline_bits(
    x: &DenseTensor,
    grid: &Grid,
    threads: usize,
    kind: KernelKind,
    sketched: bool,
) -> (Vec<Vec<u64>>, Vec<u64>, Vec<usize>) {
    let f = 3;
    let mut opts = options(f);
    opts.par = ParConfig::with_threads(threads);
    opts.kernel = kind;
    let mut b = CompressOptions::builder().mlrank(vec![f; x.dims().len()]);
    if sketched {
        b = b.oversample(3).power_iters(1);
    }
    opts.compress = Some(b.build().unwrap());
    let mut src = DenseMemorySource::new(x);
    let out = compress_decompose(&mut src, grid, &opts).unwrap();
    (
        out.model
            .factors
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect(),
        out.model.weights.iter().map(|v| v.to_bits()).collect(),
        out.provenance.mlrank.clone(),
    )
}

#[test]
fn bitwise_across_threads_and_backends() {
    let dims = [10, 9, 8, 7];
    let x = low_mlrank(&dims, 3, 21);
    let grid = Grid::uniform(&dims, 2);
    for sketched in [false, true] {
        let baseline = pipeline_bits(&x, &grid, 1, KernelKind::Reference, sketched);
        for threads in [1usize, 2, 4, 7] {
            for kind in [KernelKind::Reference, KernelKind::Tiled] {
                let got = pipeline_bits(&x, &grid, threads, kind, sketched);
                assert_eq!(
                    baseline, got,
                    "sketched={sketched} threads={threads} kind={kind:?} diverged"
                );
            }
        }
        // Run-to-run: same configuration twice.
        let again = pipeline_bits(&x, &grid, 1, KernelKind::Reference, sketched);
        assert_eq!(baseline, again, "sketched={sketched}: not repeatable");
    }
}

/// Driver-level fingerprint of the default (non-compressed) path.
fn default_path_bits(cfg: TwoPcpConfig, x: &DenseTensor) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    let outcome = TwoPcp::new(cfg).decompose_dense(x).unwrap();
    assert!(outcome.compress.is_none(), "default path gained provenance");
    (
        outcome
            .model
            .factors
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect(),
        outcome.model.weights.iter().map(|v| v.to_bits()).collect(),
        outcome
            .phase2
            .fit_trace
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

#[test]
fn compress_off_leaves_the_default_path_bitwise_unchanged() {
    let x = low_mlrank(&[12, 10, 8], 3, 5);
    let base = || {
        TwoPcpConfig::new(3)
            .parts(vec![2])
            .max_virtual_iters(12)
            .tol(1e-7)
            .seed(3)
    };
    // Configuring compression and then switching it off must restore the
    // explicitly-off path exactly — same bits everywhere, under any
    // environment.
    let off = default_path_bits(base().compress_off(), &x);
    let toggled = default_path_bits(
        base().compress(CompressOptions::default()).compress_off(),
        &x,
    );
    assert_eq!(off, toggled, "compress_off() is not a perfect no-op");
    // The truly-unconfigured driver equals the explicit off only when the
    // environment has not opted compression in (under TPCP_COMPRESS=1 the
    // env default is compressed by design); the default-env and =0 CI
    // legs exercise this arm.
    let env_opt_in = matches!(
        std::env::var("TPCP_COMPRESS").ok().as_deref(),
        Some("1") | Some("on") | Some("true") | Some("yes")
    );
    if !env_opt_in {
        let plain = default_path_bits(base(), &x);
        assert_eq!(plain, off, "unconfigured default differs from explicit off");
    }
}
