//! Property tests for the `.2pcpm` model container: save/load must be an
//! identity (bitwise factors, metadata intact) for arbitrary shapes, and
//! header corruption must be rejected with an error, never a panic.

use proptest::prelude::*;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use twopcp::{Model, ModelMeta};

/// Strategy: a random well-formed model (order 1–4, rank 1–5, small dims,
/// finite weights and factor entries).
fn models() -> impl Strategy<Value = Model> {
    let names = proptest::collection::vec(0usize..36, 1..17).prop_map(|ix| {
        const CS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        ix.into_iter().map(|i| CS[i] as char).collect::<String>()
    });
    (
        1usize..=4,
        1usize..=5,
        any::<u64>(),
        -1.0f64..1.0,
        names,
        proptest::collection::vec(1usize..6, 1..5),
    )
        .prop_flat_map(|(order, rank, seed, fit, name, parts)| {
            let dims = proptest::collection::vec(1usize..7, order..=order);
            let weights = proptest::collection::vec(-100.0f64..100.0, rank..=rank);
            (Just((rank, seed, fit, name, parts)), dims, weights)
        })
        .prop_flat_map(|((rank, seed, fit, name, parts), dims, weights)| {
            let total: usize = dims.iter().map(|d| d * rank).sum();
            let entries = proptest::collection::vec(-10.0f64..10.0, total..=total);
            (Just((rank, seed, fit, name, parts, dims, weights)), entries)
        })
        .prop_map(|((rank, seed, fit, name, parts, dims, weights), entries)| {
            let mut rest = entries.as_slice();
            let factors: Vec<Mat> = dims
                .iter()
                .map(|&d| {
                    let (head, tail) = rest.split_at(d * rank);
                    rest = tail;
                    Mat::from_vec(d, rank, head.to_vec())
                })
                .collect();
            Model::new(
                ModelMeta {
                    name,
                    rank,
                    dims,
                    seed,
                    fit,
                    schedule: "HO".into(),
                    parts,
                    compress: None,
                },
                CpModel::new(weights, factors).unwrap(),
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_bytes(to_bytes(m))` is the identity: metadata intact,
    /// weights and every factor entry bitwise-equal.
    #[test]
    fn roundtrip_is_bitwise_identity(model in models()) {
        let bytes = model.to_bytes();
        let back = Model::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.meta.name, &model.meta.name);
        prop_assert_eq!(back.meta.rank, model.meta.rank);
        prop_assert_eq!(&back.meta.dims, &model.meta.dims);
        prop_assert_eq!(back.meta.seed, model.meta.seed);
        prop_assert_eq!(back.meta.fit.to_bits(), model.meta.fit.to_bits());
        prop_assert_eq!(&back.meta.schedule, &model.meta.schedule);
        prop_assert_eq!(&back.meta.parts, &model.meta.parts);
        for (a, b) in back.weights().iter().zip(model.weights()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for h in 0..model.order() {
            let (fa, fb) = (back.factor(h), model.factor(h));
            prop_assert_eq!((fa.rows(), fa.cols()), (fb.rows(), fb.cols()));
            for (a, b) in fa.as_slice().iter().zip(fb.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Corrupting any byte of the checksummed header region makes the
    /// container load fail with an error — never a panic.
    #[test]
    fn header_corruption_is_rejected(model in models(), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let bytes = model.to_bytes();
        // The checksummed region is the 16-byte prefix plus the metadata
        // block; even the smallest model's metadata is > 59 bytes, so the
        // first 75 bytes are always inside it. Corrupt one of those.
        let span = 75usize.min(bytes.len());
        let pos = ((span as f64) * pos_frac) as usize;
        let pos = pos.min(span - 1);
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        prop_assert!(Model::from_bytes(&bad).is_err(), "flip at {} accepted", pos);
    }

    /// Arbitrary corruption anywhere in the container either errors or
    /// yields a structurally valid model — it never panics or loops.
    #[test]
    fn arbitrary_corruption_never_panics(model in models(), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let bytes = model.to_bytes();
        let pos = (((bytes.len()) as f64) * pos_frac) as usize;
        let pos = pos.min(bytes.len() - 1);
        let mut bad = bytes;
        bad[pos] ^= flip;
        if let Ok(m) = Model::from_bytes(&bad) {
            // If it decodes, it must be self-consistent.
            prop_assert_eq!(m.order(), m.meta.dims.len());
            prop_assert_eq!(m.weights().len(), m.meta.rank);
        }
    }

    /// Truncating the container at any point is an error, never a panic.
    #[test]
    fn truncation_is_rejected(model in models(), cut_frac in 0.0f64..1.0) {
        let bytes = model.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(Model::from_bytes(&bytes[..cut]).is_err());
    }
}
