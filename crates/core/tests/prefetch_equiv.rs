//! Prefetch-equivalence properties: the asynchronous I/O pipeline must
//! move bytes, never values.
//!
//! For every (policy × buffer fraction × schedule × thread budget ×
//! pipeline depth) cell, a Phase-2 refinement with prefetch enabled must
//! be **bitwise** identical to one with prefetch disabled — fit trace,
//! final factor matrices, and (the paper's headline metric) the per-
//! iteration swap counts, including under the `Forward` policy whose
//! Belady-exactness the pipeline must not perturb.

use proptest::prelude::*;
use rand::SeedableRng;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_par::ParConfig;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::{
    DiskStore, IoStats, PolicyKind, PrefetchConfig, PrefetchSource, SingleFileStore, UnitStore,
};
use tpcp_tensor::{random_factor, DenseTensor};
use twopcp::{refine, run_phase1_dense, RefineStats, TwoPcpConfig};

fn low_rank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    CpModel::new(vec![1.0; f], factors)
        .unwrap()
        .reconstruct_dense()
}

/// Everything a run produces, reduced to exactly-comparable form.
struct Fingerprint {
    fit_bits: Vec<u64>,
    factor_bits: Vec<Vec<u64>>,
    swaps_per_iteration: Vec<u64>,
    io: IoStats,
}

fn fingerprint(model: &CpModel, stats: &RefineStats) -> Fingerprint {
    Fingerprint {
        fit_bits: stats.fit_trace.iter().map(|f| f.to_bits()).collect(),
        factor_bits: model
            .factors
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect(),
        swaps_per_iteration: stats.swaps_per_iteration.clone(),
        io: stats.io,
    }
}

fn run_once<S: UnitStore + PrefetchSource>(
    x: &DenseTensor,
    cfg: &TwoPcpConfig,
    mut store: S,
) -> Fingerprint {
    let p1 = run_phase1_dense(x, cfg, &mut store).unwrap();
    let outcome = refine(&p1.grid, store, cfg, &p1.u_norm_sq).unwrap();
    fingerprint(&outcome.model, &outcome.stats)
}

fn assert_equivalent(off: &Fingerprint, on: &Fingerprint, label: &str) {
    assert_eq!(off.fit_bits, on.fit_bits, "{label}: fit trace diverged");
    assert_eq!(off.factor_bits, on.factor_bits, "{label}: factors diverged");
    assert_eq!(
        off.swaps_per_iteration, on.swaps_per_iteration,
        "{label}: per-iteration swaps diverged"
    );
    assert_eq!(off.io.fetches, on.io.fetches, "{label}: swap totals");
    assert_eq!(off.io.hits, on.io.hits, "{label}: hits");
    assert_eq!(off.io.evictions, on.io.evictions, "{label}: evictions");
    assert_eq!(
        off.io.write_backs, on.io.write_backs,
        "{label}: write-backs"
    );
    assert_eq!(off.io.bytes_read, on.io.bytes_read, "{label}: bytes read");
    assert_eq!(
        off.io.bytes_written, on.io.bytes_written,
        "{label}: bytes written"
    );
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tpcp_pf_equiv_{tag}_{}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// DiskStore: refinement is bitwise invariant to the prefetch
    /// pipeline across policies, buffer fractions, schedules, thread
    /// budgets and pipeline depths.
    #[test]
    fn refine_is_bitwise_invariant_to_prefetch(
        seed in 0u64..500,
        policy_idx in 0usize..3,
        frac_idx in 0usize..3,
        schedule_idx in 0usize..3,
        threads_idx in 0usize..2,
        depth in 1usize..9,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let fraction = [1.0 / 3.0, 0.5, 1.0][frac_idx];
        let schedule = [
            ScheduleKind::ModeCentric,
            ScheduleKind::FiberOrder,
            ScheduleKind::HilbertOrder,
        ][schedule_idx];
        // Mirrors CI's TPCP_THREADS ∈ {1, 4} matrix, pinned explicitly so
        // the property holds regardless of the ambient environment.
        let threads = [1usize, 4][threads_idx];

        let x = low_rank(&[8, 8, 8], 2, seed);
        let base = TwoPcpConfig::new(2)
            .parts(vec![2])
            .schedule(schedule)
            .policy(policy)
            .buffer_fraction(fraction)
            .max_virtual_iters(6)
            .tol(0.0)
            .seed(seed)
            .par(ParConfig::with_threads(threads));

        let dir = scratch(&format!("disk_{seed}_{policy_idx}_{frac_idx}_{schedule_idx}_{threads}_{depth}"));
        let _ = std::fs::remove_dir_all(&dir);

        let off = run_once(
            &x,
            &base.clone().prefetch(PrefetchConfig::disabled()),
            DiskStore::open(dir.join("off")).unwrap(),
        );
        let on = run_once(
            &x,
            &base.clone().prefetch_depth(depth),
            DiskStore::open(dir.join("on")).unwrap(),
        );
        assert_equivalent(&off, &on, &format!("{policy}/{schedule}/f{fraction:.2}/t{threads}/d{depth}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// SingleFileStore (shared live index + per-reader file handles): the
/// same bitwise invariance, across all three policies.
#[test]
fn single_file_store_is_bitwise_invariant_to_prefetch() {
    let x = low_rank(&[8, 8, 8], 2, 77);
    for policy in PolicyKind::ALL {
        let base = TwoPcpConfig::new(2)
            .parts(vec![2])
            .schedule(ScheduleKind::HilbertOrder)
            .policy(policy)
            .buffer_fraction(0.4)
            .max_virtual_iters(8)
            .tol(0.0)
            .par(ParConfig::with_threads(2));
        let dir = scratch(&format!("sfs_{policy}"));
        let _ = std::fs::remove_dir_all(&dir);
        let off = run_once(
            &x,
            &base.clone().prefetch(PrefetchConfig::disabled()),
            SingleFileStore::open(dir.join("off.seg")).unwrap(),
        );
        let on = run_once(
            &x,
            &base.clone().prefetch_depth(4),
            SingleFileStore::open(dir.join("on.seg")).unwrap(),
        );
        assert_equivalent(&off, &on, &format!("single-file/{policy}"));
        assert!(
            on.io.prefetch_hits > 0,
            "{policy}: pipeline never engaged (stats: {})",
            on.io
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The pipeline actually engages on a constrained buffer — misses are
/// served from staged pages — and the stall accounting registers the
/// synchronous fallbacks on the prefetch-off run.
#[test]
fn prefetch_engages_and_stall_is_accounted() {
    let x = low_rank(&[12, 12, 12], 2, 5);
    let base = TwoPcpConfig::new(2)
        .parts(vec![2])
        .schedule(ScheduleKind::HilbertOrder)
        .policy(PolicyKind::Forward)
        .buffer_fraction(0.5)
        .max_virtual_iters(10)
        .tol(0.0);
    let dir = scratch("engage");
    let _ = std::fs::remove_dir_all(&dir);
    let off = run_once(
        &x,
        &base.clone().prefetch(PrefetchConfig::disabled()),
        DiskStore::open(dir.join("off")).unwrap(),
    );
    let on = run_once(
        &x,
        &base.clone().prefetch_depth(6),
        DiskStore::open(dir.join("on")).unwrap(),
    );
    assert_eq!(off.io.prefetch_hits, 0);
    assert_eq!(off.io.prefetched_bytes, 0);
    assert!(off.io.stall_ns > 0, "sync reads must be timed");
    assert!(
        on.io.prefetch_hits > 0,
        "constrained-buffer misses must hit the pipeline (stats: {})",
        on.io
    );
    assert!(on.io.prefetched_bytes > 0);
    // Swap counts — the Forward policy's Belady-exact metric — unchanged.
    assert_eq!(off.io.fetches, on.io.fetches);
    let _ = std::fs::remove_dir_all(&dir);
}
