//! End-to-end kernel-backend equivalence: the tiled microkernels must
//! change *speed*, never *values*.
//!
//! A full 2PCP run (Phase 1 block ALS + Phase 2 out-of-core refinement)
//! with `KernelKind::Tiled` must be **bitwise** identical to the same run
//! with `KernelKind::Reference` — fit trace, final factor matrices, and
//! the paper's headline swap counts — across schedules, eviction
//! policies and thread budgets. This is the CI-enforced contract behind
//! the `TPCP_KERNEL` env legs.

use proptest::prelude::*;
use rand::SeedableRng;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_par::ParConfig;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::{DiskStore, IoStats, PolicyKind};
use tpcp_tensor::{random_factor, DenseTensor};
use twopcp::{refine, run_phase1_dense, KernelKind, RefineStats, TwoPcpConfig};

fn low_rank(dims: &[usize], f: usize, seed: u64) -> DenseTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    CpModel::new(vec![1.0; f], factors)
        .unwrap()
        .reconstruct_dense()
}

/// Everything a run produces, reduced to exactly-comparable form.
struct Fingerprint {
    fit_bits: Vec<u64>,
    factor_bits: Vec<Vec<u64>>,
    swaps_per_iteration: Vec<u64>,
    io: IoStats,
}

fn fingerprint(model: &CpModel, stats: &RefineStats) -> Fingerprint {
    Fingerprint {
        fit_bits: stats.fit_trace.iter().map(|f| f.to_bits()).collect(),
        factor_bits: model
            .factors
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect(),
        swaps_per_iteration: stats.swaps_per_iteration.clone(),
        io: stats.io,
    }
}

fn run_once(x: &DenseTensor, cfg: &TwoPcpConfig, dir: &std::path::Path) -> Fingerprint {
    let mut store = DiskStore::open(dir).unwrap();
    let p1 = run_phase1_dense(x, cfg, &mut store).unwrap();
    let outcome = refine(&p1.grid, store, cfg, &p1.u_norm_sq).unwrap();
    fingerprint(&outcome.model, &outcome.stats)
}

fn assert_equivalent(reference: &Fingerprint, tiled: &Fingerprint, label: &str) {
    assert_eq!(
        reference.fit_bits, tiled.fit_bits,
        "{label}: fit trace diverged"
    );
    assert_eq!(
        reference.factor_bits, tiled.factor_bits,
        "{label}: factors diverged"
    );
    assert_eq!(
        reference.swaps_per_iteration, tiled.swaps_per_iteration,
        "{label}: per-iteration swaps diverged"
    );
    assert_eq!(reference.io.fetches, tiled.io.fetches, "{label}: swaps");
    assert_eq!(
        reference.io.evictions, tiled.io.evictions,
        "{label}: evictions"
    );
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tpcp_kern_equiv_{tag}_{}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full pipeline, Reference vs Tiled: bitwise-identical factors, fit
    /// trace and swap counts across schedule/policy/thread cells.
    #[test]
    fn decompose_is_bitwise_invariant_to_kernel_backend(
        seed in 0u64..500,
        policy_idx in 0usize..3,
        schedule_idx in 0usize..3,
        threads_idx in 0usize..2,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let schedule = [
            ScheduleKind::ModeCentric,
            ScheduleKind::FiberOrder,
            ScheduleKind::HilbertOrder,
        ][schedule_idx];
        // Mirrors CI's TPCP_THREADS ∈ {1, 4} matrix, pinned explicitly so
        // the property holds regardless of the ambient environment.
        let threads = [1usize, 4][threads_idx];

        let x = low_rank(&[8, 8, 8], 2, seed);
        let base = TwoPcpConfig::new(2)
            .parts(vec![2])
            .schedule(schedule)
            .policy(policy)
            .buffer_fraction(0.5)
            .max_virtual_iters(6)
            .tol(0.0)
            .seed(seed)
            .par(ParConfig::with_threads(threads));

        let dir = scratch(&format!("{seed}_{policy_idx}_{schedule_idx}_{threads}"));
        let _ = std::fs::remove_dir_all(&dir);

        let reference = run_once(
            &x,
            &base.clone().kernel(KernelKind::Reference),
            &dir.join("ref"),
        );
        let tiled = run_once(&x, &base.clone().kernel(KernelKind::Tiled), &dir.join("tiled"));
        assert_equivalent(
            &reference,
            &tiled,
            &format!("{policy}/{schedule}/t{threads}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The high-level `TwoPcp::decompose_dense` driver (which also routes the
/// Phase-1 ALS through the seam) is backend-invariant end to end.
#[test]
fn driver_outcome_is_backend_invariant() {
    use twopcp::TwoPcp;
    let x = low_rank(&[10, 9, 8], 3, 21);
    let base = TwoPcpConfig::new(3)
        .parts(vec![2, 2, 2])
        .schedule(ScheduleKind::HilbertOrder)
        .policy(PolicyKind::Forward)
        .buffer_fraction(0.5)
        .max_virtual_iters(5)
        .tol(0.0)
        .seed(9);
    let reference = TwoPcp::new(base.clone().kernel(KernelKind::Reference))
        .decompose_dense(&x)
        .unwrap();
    let tiled = TwoPcp::new(base.kernel(KernelKind::Tiled))
        .decompose_dense(&x)
        .unwrap();
    assert_eq!(
        reference.fit.to_bits(),
        tiled.fit.to_bits(),
        "final fit diverged"
    );
    assert_eq!(
        reference.phase2.io.swaps(),
        tiled.phase2.io.swaps(),
        "swap counts diverged"
    );
    for (r, t) in reference
        .model
        .factors
        .iter()
        .zip(tiled.model.factors.iter())
    {
        let rb: Vec<u64> = r.as_slice().iter().map(|v| v.to_bits()).collect();
        let tb: Vec<u64> = t.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(rb, tb, "factors diverged");
    }
}
