//! Forward-looking next-use oracle over a cyclic schedule.
//!
//! §VII-B: "thanks to the regular natures of fiber-, Z-, and Hilbert-order
//! traversals, it is possible to compute in advance precisely how far in
//! the future a given data unit … will be needed again". [`CycleOracle`]
//! precomputes, per data unit, the sorted positions within one cycle at
//! which the unit is touched; a next-use query is then a binary search plus
//! cyclic wrap-around.

use crate::steps::{Step, UnitId};
use tpcp_partition::Grid;

/// Answers "at which global step will `unit` next be needed?".
///
/// Implemented by [`CycleOracle`]; the forward-looking buffer replacement
/// policy ranks eviction victims by this quantity (largest = least urgent).
pub trait NextUseOracle {
    /// The first global step index `>= now` at which `unit` is accessed.
    ///
    /// Schedules are infinite cyclic repetitions, so a unit that appears in
    /// the cycle always has a next use. Units that never appear return
    /// `u64::MAX`.
    fn next_use(&self, unit: UnitId, now: u64) -> u64;
}

/// Answers "which units does the schedule touch at step `pos`?" — the
/// forward direction of the deterministic cycle.
///
/// Where [`NextUseOracle`] lets a replacement policy look *backwards* from
/// a unit to its next use, `AccessSequence` lets a prefetcher walk the
/// upcoming access stream *forwards* and stage exactly the units the next
/// steps will pin (the same §VII determinism, spent on overlap instead of
/// eviction).
pub trait AccessSequence {
    /// The units accessed at cyclic global step `pos`, in step order.
    fn units_at(&self, pos: u64) -> Vec<UnitId>;

    /// Visits the units accessed at `pos` without allocating — the
    /// hot-path variant (a prefetcher walks many positions per step).
    /// Implementations holding the step's units contiguously should
    /// override this; the default delegates to
    /// [`AccessSequence::units_at`].
    fn for_each_unit_at(&self, pos: u64, f: &mut dyn FnMut(UnitId)) {
        for unit in self.units_at(pos) {
            f(unit);
        }
    }
}

/// Precomputed next-use index for one schedule cycle.
pub struct CycleOracle {
    cycle_len: u64,
    /// For each unit (dense-linearised), the sorted in-cycle positions at
    /// which it is accessed.
    positions: Vec<Vec<u32>>,
    /// For each in-cycle position, the units that step touches (the
    /// inverse of `positions`; powers [`AccessSequence`]).
    step_units: Vec<Vec<UnitId>>,
}

impl CycleOracle {
    /// Builds the oracle for `cycle` over `grid`'s units.
    ///
    /// # Panics
    /// Panics on an empty cycle or one longer than `u32::MAX` steps.
    pub fn new(grid: &Grid, cycle: &[Step]) -> Self {
        assert!(!cycle.is_empty(), "empty schedule cycle");
        assert!(cycle.len() <= u32::MAX as usize, "cycle too long");
        let mut positions = vec![Vec::new(); grid.num_units()];
        let mut step_units = Vec::with_capacity(cycle.len());
        for (pos, step) in cycle.iter().enumerate() {
            let units = step.units(grid);
            for unit in &units {
                positions[unit.linear(grid)].push(pos as u32);
            }
            step_units.push(units);
        }
        CycleOracle {
            cycle_len: cycle.len() as u64,
            step_units,
            positions: positions
                .into_iter()
                .map(|mut v| {
                    v.dedup();
                    v
                })
                .collect(),
        }
    }

    /// Length of the underlying cycle in steps.
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    /// The units touched at cyclic global step `pos`, in step order.
    pub fn units_at_position(&self, pos: u64) -> &[UnitId] {
        &self.step_units[(pos % self.cycle_len) as usize]
    }

    /// Looks up the position list via a grid-independent linear unit index.
    fn next_from_linear(&self, unit_lin: usize, now: u64) -> u64 {
        let Some(list) = self.positions.get(unit_lin) else {
            return u64::MAX;
        };
        if list.is_empty() {
            return u64::MAX;
        }
        let base = now - (now % self.cycle_len);
        let offset = (now % self.cycle_len) as u32;
        match list.binary_search(&offset) {
            Ok(_) => now,
            Err(insert) => {
                if insert < list.len() {
                    base + u64::from(list[insert])
                } else {
                    // Wraps into the next cycle repetition.
                    base + self.cycle_len + u64::from(list[0])
                }
            }
        }
    }
}

/// A `CycleOracle` paired with the grid it indexes; implements the public
/// trait without the caller having to thread the grid around.
pub struct GridOracle<'a> {
    grid: &'a Grid,
    oracle: &'a CycleOracle,
}

impl NextUseOracle for GridOracle<'_> {
    fn next_use(&self, unit: UnitId, now: u64) -> u64 {
        self.oracle.next_from_linear(unit.linear(self.grid), now)
    }
}

impl AccessSequence for GridOracle<'_> {
    fn units_at(&self, pos: u64) -> Vec<UnitId> {
        self.oracle.units_at_position(pos).to_vec()
    }

    fn for_each_unit_at(&self, pos: u64, f: &mut dyn FnMut(UnitId)) {
        for &unit in self.oracle.units_at_position(pos) {
            f(unit);
        }
    }
}

impl CycleOracle {
    /// Borrows this oracle as a [`NextUseOracle`] bound to `grid`.
    pub fn bind<'a>(&'a self, grid: &'a Grid) -> GridOracle<'a> {
        GridOracle { grid, oracle: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steps::{build_cycle, ScheduleKind};

    #[test]
    fn next_use_on_mode_centric_cycle() {
        let g = Grid::uniform(&[8, 8], 2);
        let cycle = build_cycle(&g, ScheduleKind::ModeCentric);
        // Steps: (0,0) (0,1) (1,0) (1,1).
        let oracle = CycleOracle::new(&g, &cycle);
        let bound = oracle.bind(&g);
        assert_eq!(bound.next_use(UnitId::new(0, 0), 0), 0);
        assert_eq!(bound.next_use(UnitId::new(0, 1), 0), 1);
        assert_eq!(bound.next_use(UnitId::new(1, 1), 0), 3);
        // After its position, the unit's next use wraps into the next cycle.
        assert_eq!(bound.next_use(UnitId::new(0, 0), 1), 4);
        assert_eq!(bound.next_use(UnitId::new(1, 1), 4), 7);
    }

    #[test]
    fn next_use_counts_block_steps() {
        let g = Grid::uniform(&[8, 8], 2);
        let cycle = build_cycle(&g, ScheduleKind::FiberOrder);
        // Blocks row-major: (0,0) (0,1) (1,0) (1,1).
        let oracle = CycleOracle::new(&g, &cycle);
        let bound = oracle.bind(&g);
        // Unit <0,0> (mode 0, part 0) is used by blocks 0 and 1.
        assert_eq!(bound.next_use(UnitId::new(0, 0), 0), 0);
        // Wraps around the cycle:
        assert_eq!(bound.next_use(UnitId::new(0, 0), 2), 4);
        // Unit <1,0> (mode 1, part 0) is used by blocks (0,0) and (1,0).
        assert_eq!(bound.next_use(UnitId::new(1, 0), 1), 2);
        assert_eq!(bound.next_use(UnitId::new(1, 0), 3), 4);
    }

    #[test]
    fn next_use_exactly_now_counts() {
        let g = Grid::uniform(&[8, 8], 2);
        let cycle = build_cycle(&g, ScheduleKind::FiberOrder);
        let oracle = CycleOracle::new(&g, &cycle);
        let bound = oracle.bind(&g);
        // At step 2 (block (1,0)) unit <0,1> is in use right now.
        assert_eq!(bound.next_use(UnitId::new(0, 1), 2), 2);
    }

    #[test]
    fn oracle_consistent_far_into_the_future() {
        let g = Grid::uniform(&[16, 16, 16], 4);
        let cycle = build_cycle(&g, ScheduleKind::HilbertOrder);
        let oracle = CycleOracle::new(&g, &cycle);
        let bound = oracle.bind(&g);
        let clen = cycle.len() as u64;
        for probe in [0u64, 17, clen - 1, clen, 5 * clen + 3] {
            for unit_lin in 0..g.num_units() {
                let unit = UnitId::from_linear(&g, unit_lin);
                let nu = bound.next_use(unit, probe);
                assert!(nu >= probe);
                // Verify against a brute-force scan of the cyclic schedule.
                let mut expect = None;
                for delta in 0..2 * clen {
                    let pos = probe + delta;
                    let step = cycle[(pos % clen) as usize];
                    if step.units(&g).contains(&unit) {
                        expect = Some(pos);
                        break;
                    }
                }
                assert_eq!(nu, expect.unwrap(), "unit {unit} at {probe}");
            }
        }
    }

    #[test]
    fn access_sequence_matches_step_units() {
        let g = Grid::uniform(&[16, 16, 16], 2);
        for kind in [ScheduleKind::ModeCentric, ScheduleKind::HilbertOrder] {
            let cycle = build_cycle(&g, kind);
            let oracle = CycleOracle::new(&g, &cycle);
            let bound = oracle.bind(&g);
            let clen = cycle.len() as u64;
            // In-cycle positions and wrapped repetitions agree with the
            // raw step definition.
            for pos in [0u64, 1, clen - 1, clen, 3 * clen + 2] {
                let expect = cycle[(pos % clen) as usize].units(&g);
                assert_eq!(bound.units_at(pos), expect, "{kind} at {pos}");
                assert_eq!(oracle.units_at_position(pos), &expect[..]);
            }
        }
    }

    #[test]
    fn unknown_unit_is_never_used() {
        // Build an oracle over a truncated cycle missing some units.
        let g = Grid::uniform(&[8, 8], 2);
        let cycle = vec![Step::ModeUpdate { mode: 0, part: 0 }];
        let oracle = CycleOracle::new(&g, &cycle);
        let bound = oracle.bind(&g);
        assert_eq!(bound.next_use(UnitId::new(1, 1), 0), u64::MAX);
    }
}
