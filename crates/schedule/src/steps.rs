//! Schedule kinds, steps and data-access units.

use crate::curves::{hilbert_rank_blocks, morton_rank_blocks};
use crate::gray::gray_rank_blocks;
use tpcp_partition::Grid;

/// A mode-partition pair `⟨i, kᵢ⟩` — the paper's unit of data access
/// (Def. 4): the global sub-factor `A(i)(kᵢ)` *plus* the mode-`i`
/// sub-factors of every block in the slab `[∗,…,kᵢ,…,∗]`.
///
/// All buffer traffic is counted at this granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId {
    /// The mode `i`.
    pub mode: u16,
    /// The partition index `kᵢ` along that mode.
    pub part: u32,
}

impl UnitId {
    /// Creates a unit id.
    pub fn new(mode: usize, part: usize) -> Self {
        UnitId {
            mode: mode as u16,
            part: part as u32,
        }
    }

    /// Dense linear index of this unit in `0..grid.num_units()`
    /// (units ordered by mode, then partition).
    pub fn linear(&self, grid: &Grid) -> usize {
        let mut base = 0usize;
        for m in 0..self.mode as usize {
            base += grid.parts()[m];
        }
        base + self.part as usize
    }

    /// Inverse of [`UnitId::linear`].
    pub fn from_linear(grid: &Grid, mut lin: usize) -> Self {
        for (m, &p) in grid.parts().iter().enumerate() {
            if lin < p {
                return UnitId::new(m, lin);
            }
            lin -= p;
        }
        panic!("unit linear index out of range");
    }
}

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{},{}>", self.mode, self.part)
    }
}

/// One step of an update schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Block-centric step (Algorithm 2): visit block `linear id` and update
    /// all `N` sub-factors it touches.
    Block(usize),
    /// Mode-centric step (Algorithm 1): update the single sub-factor
    /// `A(mode)(part)`.
    ModeUpdate {
        /// Mode being updated.
        mode: usize,
        /// Partition of that mode.
        part: usize,
    },
}

impl Step {
    /// Number of sub-factor updates this step performs: `N` for a block
    /// step (one per mode), `1` for a mode-centric step. The currency of
    /// virtual-iteration accounting (paper Def. 3).
    pub fn update_count(&self, grid: &Grid) -> usize {
        match self {
            Step::Block(_) => grid.order(),
            Step::ModeUpdate { .. } => 1,
        }
    }

    /// The data units this step needs resident in the buffer: `N` units for
    /// a block step, one for a mode-centric step.
    pub fn units(&self, grid: &Grid) -> Vec<UnitId> {
        match *self {
            Step::Block(lin) => grid
                .block_coords(lin)
                .iter()
                .enumerate()
                .map(|(m, &k)| UnitId::new(m, k))
                .collect(),
            Step::ModeUpdate { mode, part } => vec![UnitId::new(mode, part)],
        }
    }
}

/// The update-schedule families evaluated in the paper (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Conventional mode-centric order (paper Algorithm 1, "MC").
    ModeCentric,
    /// Block-centric nested-loop traversal ("FO", §VI-B).
    FiberOrder,
    /// Block-centric Morton-curve traversal ("ZO", §VI-C1).
    ZOrder,
    /// Block-centric Hilbert-curve traversal ("HO", §VI-C2).
    HilbertOrder,
    /// Block-centric mixed-radix Gray-code traversal ("GO") — an
    /// *extension* beyond the paper's evaluated set: unit-step transitions
    /// like Hilbert, native support for non-power-of-two grids, O(order)
    /// rank mapping. See the `ablations` bench.
    GrayOrder,
}

impl ScheduleKind {
    /// The four schedules the paper evaluates, in its presentation order.
    pub const ALL: [ScheduleKind; 4] = [
        ScheduleKind::ModeCentric,
        ScheduleKind::FiberOrder,
        ScheduleKind::ZOrder,
        ScheduleKind::HilbertOrder,
    ];

    /// The paper's four plus this crate's extension schedules.
    pub const ALL_EXTENDED: [ScheduleKind; 5] = [
        ScheduleKind::ModeCentric,
        ScheduleKind::FiberOrder,
        ScheduleKind::ZOrder,
        ScheduleKind::HilbertOrder,
        ScheduleKind::GrayOrder,
    ];

    /// The paper's two-letter abbreviation (MC/FO/ZO/HO).
    pub fn abbrev(&self) -> &'static str {
        match self {
            ScheduleKind::ModeCentric => "MC",
            ScheduleKind::FiberOrder => "FO",
            ScheduleKind::ZOrder => "ZO",
            ScheduleKind::HilbertOrder => "HO",
            ScheduleKind::GrayOrder => "GO",
        }
    }

    /// `true` for the block-centric family (everything but MC).
    pub fn is_block_centric(&self) -> bool {
        !matches!(self, ScheduleKind::ModeCentric)
    }
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

impl std::str::FromStr for ScheduleKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "MC" | "MODE" | "MODE-CENTRIC" => Ok(ScheduleKind::ModeCentric),
            "FO" | "FIBER" => Ok(ScheduleKind::FiberOrder),
            "ZO" | "Z" | "Z-ORDER" | "MORTON" => Ok(ScheduleKind::ZOrder),
            "HO" | "H" | "HILBERT" => Ok(ScheduleKind::HilbertOrder),
            "GO" | "GRAY" => Ok(ScheduleKind::GrayOrder),
            other => Err(format!("unknown schedule kind: {other}")),
        }
    }
}

/// Builds one full cycle `C` of the tensor-filling schedule (paper Def. 2).
///
/// * MC: `Σᵢ Kᵢ` [`Step::ModeUpdate`]s — each sub-factor exactly once;
/// * FO/ZO/HO: `Πᵢ Kᵢ` [`Step::Block`]s — each block position exactly once,
///   in the respective traversal order.
///
/// Repeating the returned cycle yields the infinite schedule
/// `S = C : C : C : …`.
pub fn build_cycle(grid: &Grid, kind: ScheduleKind) -> Vec<Step> {
    match kind {
        ScheduleKind::ModeCentric => {
            let mut steps = Vec::with_capacity(grid.num_units());
            for mode in 0..grid.order() {
                for part in 0..grid.parts()[mode] {
                    steps.push(Step::ModeUpdate { mode, part });
                }
            }
            steps
        }
        ScheduleKind::FiberOrder => (0..grid.num_blocks()).map(Step::Block).collect(),
        ScheduleKind::ZOrder => morton_rank_blocks(grid)
            .into_iter()
            .map(Step::Block)
            .collect(),
        ScheduleKind::HilbertOrder => hilbert_rank_blocks(grid)
            .into_iter()
            .map(Step::Block)
            .collect(),
        ScheduleKind::GrayOrder => gray_rank_blocks(grid)
            .into_iter()
            .map(Step::Block)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid222() -> Grid {
        Grid::uniform(&[8, 8, 8], 2)
    }

    #[test]
    fn unit_linear_roundtrip() {
        let g = Grid::new(&[8, 9, 10], &[2, 3, 5]);
        for lin in 0..g.num_units() {
            let u = UnitId::from_linear(&g, lin);
            assert_eq!(u.linear(&g), lin);
        }
        assert_eq!(UnitId::new(1, 2).linear(&g), 2 + 2);
        assert_eq!(UnitId::new(2, 0).linear(&g), 2 + 3);
    }

    #[test]
    fn mode_centric_cycle_shape() {
        let g = grid222();
        let c = build_cycle(&g, ScheduleKind::ModeCentric);
        assert_eq!(c.len(), 6);
        assert_eq!(c[0], Step::ModeUpdate { mode: 0, part: 0 });
        assert_eq!(c[5], Step::ModeUpdate { mode: 2, part: 1 });
        // Each step needs exactly one unit.
        assert!(c.iter().all(|s| s.units(&g).len() == 1));
    }

    #[test]
    fn block_centric_cycles_are_tensor_filling() {
        let g = grid222();
        for kind in [
            ScheduleKind::FiberOrder,
            ScheduleKind::ZOrder,
            ScheduleKind::HilbertOrder,
        ] {
            let c = build_cycle(&g, kind);
            assert_eq!(c.len(), g.num_blocks(), "{kind}");
            let mut seen: Vec<usize> = c
                .iter()
                .map(|s| match s {
                    Step::Block(l) => *l,
                    _ => panic!("unexpected mode step"),
                })
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..g.num_blocks()).collect::<Vec<_>>(), "{kind}");
        }
    }

    #[test]
    fn block_step_units() {
        let g = grid222();
        let lin = g.block_linear(&[1, 0, 1]);
        let units = Step::Block(lin).units(&g);
        assert_eq!(
            units,
            vec![UnitId::new(0, 1), UnitId::new(1, 0), UnitId::new(2, 1)]
        );
    }

    #[test]
    fn fiber_order_consecutive_blocks_share_units() {
        // §VI-B: along a fiber only the last-mode unit changes.
        let g = Grid::uniform(&[8, 8, 8], 4);
        let c = build_cycle(&g, ScheduleKind::FiberOrder);
        let mut shared_counts = Vec::new();
        for w in c.windows(2) {
            let u1 = w[0].units(&g);
            let u2 = w[1].units(&g);
            let shared = u1.iter().filter(|u| u2.contains(u)).count();
            shared_counts.push(shared);
        }
        // Most transitions share N-1 = 2 units (all except fiber wrap).
        let full_share = shared_counts.iter().filter(|&&s| s == 2).count();
        assert!(full_share >= c.len() - 1 - (c.len() / 4));
    }

    #[test]
    fn hilbert_consecutive_blocks_share_n_minus_1_units_everywhere() {
        // The Hilbert walk changes exactly one coordinate per step on a
        // power-of-two grid, so every transition shares N-1 units.
        let g = grid222();
        let c = build_cycle(&g, ScheduleKind::HilbertOrder);
        for w in c.windows(2) {
            let u1 = w[0].units(&g);
            let u2 = w[1].units(&g);
            let shared = u1.iter().filter(|u| u2.contains(u)).count();
            assert_eq!(shared, 2);
        }
    }

    #[test]
    fn schedule_kind_parsing_and_display() {
        use std::str::FromStr;
        for kind in ScheduleKind::ALL {
            assert_eq!(ScheduleKind::from_str(kind.abbrev()).unwrap(), kind);
        }
        assert!(ScheduleKind::from_str("nope").is_err());
        assert_eq!(ScheduleKind::ZOrder.to_string(), "ZO");
        assert!(ScheduleKind::HilbertOrder.is_block_centric());
        assert!(!ScheduleKind::ModeCentric.is_block_centric());
    }
}
