//! Space-filling curve indices: Morton (Z-order) and Hilbert.
//!
//! Both functions map an N-dimensional block coordinate to a scalar curve
//! position; schedules are obtained by *sorting* the grid's blocks by that
//! position. Sorting (rather than walking the padded curve and skipping
//! out-of-range cells) handles non-power-of-two partition counts without
//! enumerating the padding.

/// Morton (Z-order) index of `coords`, interleaving `bits` bits per mode
/// with mode 0 occupying the most significant bit of each group.
///
/// This matches the paper's definition (§VI-C1):
/// `zvalue(k).base2((m−j)N + i) = kᵢ.base2(j)` — e.g. block `[2, 3]` with
/// `m = 3` maps to `0b001101 = 13`, the example of Figure 9(b).
///
/// # Panics
/// Panics if the result would not fit 128 bits or a coordinate needs more
/// than `bits` bits.
pub fn morton_index(coords: &[usize], bits: u32) -> u128 {
    let n = coords.len() as u32;
    assert!(bits * n <= 128, "morton index exceeds 128 bits");
    for &c in coords {
        assert!(
            bits == 0 || (c >> bits) == 0,
            "coordinate {c} needs more than {bits} bits"
        );
    }
    let mut z: u128 = 0;
    for j in (0..bits).rev() {
        for &c in coords {
            z = (z << 1) | ((c as u128 >> j) & 1);
        }
    }
    z
}

/// Hilbert curve index of `coords`, `bits` bits per mode, using Skilling's
/// axes-to-transpose algorithm (J. Skilling, "Programming the Hilbert
/// curve", AIP 2004) followed by bit interleaving of the transposed form.
///
/// The resulting order has the property the paper exploits (§VI-C2):
/// consecutive curve positions differ in exactly one coordinate by ±1
/// ("U"-shaped segments, no jumps), so neighbouring steps share `N−1` of
/// their `N` data units.
///
/// # Panics
/// Panics if the result would not fit 128 bits or a coordinate needs more
/// than `bits` bits.
pub fn hilbert_index(coords: &[usize], bits: u32) -> u128 {
    let n = coords.len();
    assert!(bits as usize * n <= 128, "hilbert index exceeds 128 bits");
    for &c in coords {
        assert!(
            bits == 0 || (c >> bits) == 0,
            "coordinate {c} needs more than {bits} bits"
        );
    }
    if bits == 0 || n == 0 {
        return 0;
    }
    let mut x: Vec<u64> = coords.iter().map(|&c| c as u64).collect();

    // Axes -> transpose (Skilling). After this, the Hilbert index is the
    // bit-interleave of x[0..n] (x[0] most significant within each group).
    let mut q: u64 = 1 << (bits - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t: u64 = 0;
    q = 1 << (bits - 1);
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in &mut x {
        *xi ^= t;
    }

    // Interleave the transposed form into a single integer.
    let mut h: u128 = 0;
    for j in (0..bits).rev() {
        for &xi in &x {
            h = (h << 1) | ((xi as u128 >> j) & 1);
        }
    }
    h
}

/// Inverse of [`hilbert_index`]: recovers coordinates from a curve position
/// (Skilling's transpose-to-axes). Used by tests to establish bijectivity.
pub fn hilbert_coords(index: u128, n: usize, bits: u32) -> Vec<usize> {
    if n == 0 || bits == 0 {
        return vec![0; n];
    }
    // De-interleave into the transposed form.
    let mut x = vec![0u64; n];
    let total_bits = bits as usize * n;
    for b in 0..total_bits {
        let bit = (index >> (total_bits - 1 - b)) & 1;
        let j = bits - 1 - (b / n) as u32;
        let i = b % n;
        x[i] |= (bit as u64) << j;
    }

    // Gray decode.
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;

    // Undo excess work.
    let mut q: u64 = 2;
    while q != 1 << bits {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
    x.into_iter().map(|v| v as usize).collect()
}

/// Number of bits needed to address `parts` partitions.
fn bits_for(parts: &[usize]) -> u32 {
    parts
        .iter()
        .map(|&p| usize::BITS - p.saturating_sub(1).leading_zeros())
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Linear block ids of `grid` sorted by Morton curve position.
pub fn morton_rank_blocks(grid: &tpcp_partition::Grid) -> Vec<usize> {
    rank_by(grid, morton_index)
}

/// Linear block ids of `grid` sorted by Hilbert curve position.
pub fn hilbert_rank_blocks(grid: &tpcp_partition::Grid) -> Vec<usize> {
    rank_by(grid, hilbert_index)
}

fn rank_by(grid: &tpcp_partition::Grid, key: fn(&[usize], u32) -> u128) -> Vec<usize> {
    let bits = bits_for(grid.parts());
    let mut ids: Vec<(u128, usize)> = (0..grid.num_blocks())
        .map(|lin| (key(&grid.block_coords(lin), bits), lin))
        .collect();
    ids.sort_unstable();
    ids.into_iter().map(|(_, lin)| lin).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_partition::Grid;

    #[test]
    fn morton_matches_paper_example() {
        // Figure 9(b): block [2, 3] in an 8x8 grid has Z-value 13.
        assert_eq!(morton_index(&[2, 3], 3), 0b001101);
        assert_eq!(morton_index(&[2, 3], 3), 13);
    }

    #[test]
    fn morton_2d_first_quad() {
        // Classic 2x2 "Z": (0,0) (0,1) (1,0) (1,1).
        let order: Vec<u128> = [[0, 0], [0, 1], [1, 0], [1, 1]]
            .iter()
            .map(|c| morton_index(c, 1))
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn morton_is_injective_8x8() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..8usize {
            for j in 0..8usize {
                assert!(seen.insert(morton_index(&[i, j], 3)));
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn hilbert_2x2_is_the_u_shape() {
        // Order-1 2D Hilbert curve: (0,0) (0,1) (1,1) (1,0).
        let path: Vec<Vec<usize>> = (0..4).map(|h| hilbert_coords(h, 2, 1)).collect();
        assert_eq!(path, vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![1, 0]]);
    }

    #[test]
    fn hilbert_roundtrip_and_unit_steps_2d() {
        let bits = 3;
        let side = 1usize << bits;
        let mut prev: Option<Vec<usize>> = None;
        for h in 0..(side * side) as u128 {
            let c = hilbert_coords(h, 2, bits);
            assert_eq!(hilbert_index(&c, bits), h, "roundtrip at {h}");
            if let Some(p) = prev {
                let dist: usize = p.iter().zip(&c).map(|(a, b)| a.abs_diff(*b)).sum();
                assert_eq!(dist, 1, "non-unit step {p:?} -> {c:?}");
            }
            prev = Some(c);
        }
    }

    #[test]
    fn hilbert_roundtrip_and_unit_steps_3d() {
        let bits = 2;
        let side = 1usize << bits;
        let mut prev: Option<Vec<usize>> = None;
        for h in 0..(side * side * side) as u128 {
            let c = hilbert_coords(h, 3, bits);
            assert_eq!(hilbert_index(&c, bits), h, "roundtrip at {h}");
            if let Some(p) = prev {
                let dist: usize = p.iter().zip(&c).map(|(a, b)| a.abs_diff(*b)).sum();
                assert_eq!(dist, 1, "non-unit step {p:?} -> {c:?}");
            }
            prev = Some(c);
        }
    }

    #[test]
    fn hilbert_visits_every_cell_4d() {
        let bits = 1;
        let cells = 1u128 << 4;
        let mut seen = std::collections::HashSet::new();
        for h in 0..cells {
            let c = hilbert_coords(h, 4, bits);
            assert!(c.iter().all(|&v| v < 2));
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn rank_blocks_cover_grid_once() {
        let g = Grid::uniform(&[8, 8, 8], 4);
        for ranks in [morton_rank_blocks(&g), hilbert_rank_blocks(&g)] {
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..g.num_blocks()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rank_blocks_non_power_of_two() {
        let g = Grid::new(&[9, 6, 10], &[3, 2, 5]);
        for ranks in [morton_rank_blocks(&g), hilbert_rank_blocks(&g)] {
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..g.num_blocks()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn hilbert_rank_follows_curve_on_pow2_grid() {
        // On a full power-of-two grid the sorted order must equal the curve
        // walk, hence consecutive blocks at Manhattan distance 1.
        let g = Grid::uniform(&[8, 8], 4);
        let ranks = hilbert_rank_blocks(&g);
        for w in ranks.windows(2) {
            let a = g.block_coords(w[0]);
            let b = g.block_coords(w[1]);
            let dist: usize = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
            assert_eq!(dist, 1);
        }
    }

    #[test]
    fn bits_for_handles_edge_cases() {
        assert_eq!(bits_for(&[1]), 1);
        assert_eq!(bits_for(&[2]), 1);
        assert_eq!(bits_for(&[3]), 2);
        assert_eq!(bits_for(&[8, 2]), 3);
    }
}
