//! Mixed-radix reflected Gray-code traversal (extension schedule).
//!
//! Not part of the paper's evaluated set — included as an ablation: the
//! reflected Gray code over the block grid changes **exactly one**
//! coordinate (by ±1) per step like the Hilbert curve, so consecutive
//! steps share `N−1` of their `N` data units; unlike Hilbert it is defined
//! natively for arbitrary (non-power-of-two, per-mode different) partition
//! counts and its rank mapping is a handful of divisions.
//!
//! The construction is the standard mixed-radix reflected Gray code: digit
//! `m` of the `rank`-th codeword counts up `0,1,…,Kₘ−1` or down depending
//! on the parity of the more-significant prefix.

/// Coordinates of position `rank` on the mixed-radix reflected Gray walk
/// over a grid with per-mode sizes `radices` (row-major digit order, mode
/// 0 most significant).
///
/// # Panics
/// Panics when `rank >= Π radices` or a radix is zero.
pub fn gray_coords(mut rank: usize, radices: &[usize]) -> Vec<usize> {
    let total: usize = radices.iter().product();
    assert!(
        radices.iter().all(|&r| r > 0) && rank < total,
        "gray rank {rank} out of range for radices {radices:?}"
    );
    // Plain mixed-radix digits, most significant first.
    let mut digits = vec![0usize; radices.len()];
    for m in (0..radices.len()).rev() {
        digits[m] = rank % radices[m];
        rank /= radices[m];
    }
    // Reflect: digit m runs backwards whenever the *plain value* of the
    // more significant prefix is odd (each advance of the prefix reverses
    // the whole inner sweep once).
    let mut out = vec![0usize; radices.len()];
    let mut prefix = 0usize;
    for (m, &r) in radices.iter().enumerate() {
        let d = digits[m];
        out[m] = if prefix.is_multiple_of(2) {
            d
        } else {
            r - 1 - d
        };
        prefix = prefix * r + d;
    }
    out
}

/// Inverse of [`gray_coords`]: the walk position of `coords`.
///
/// # Panics
/// Panics when a coordinate is out of range.
pub fn gray_rank(coords: &[usize], radices: &[usize]) -> usize {
    assert_eq!(coords.len(), radices.len());
    let mut rank = 0usize;
    for (m, (&c, &r)) in coords.iter().zip(radices).enumerate() {
        assert!(
            c < r,
            "coordinate {c} out of range for radix {r} (mode {m})"
        );
        let d = if rank.is_multiple_of(2) { c } else { r - 1 - c };
        rank = rank * r + d;
    }
    rank
}

/// Linear block ids of `grid` in Gray-walk order.
pub fn gray_rank_blocks(grid: &tpcp_partition::Grid) -> Vec<usize> {
    let radices = grid.parts();
    (0..grid.num_blocks())
        .map(|rank| grid.block_linear(&gray_coords(rank, radices)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_partition::Grid;

    #[test]
    fn binary_gray_matches_classic_sequence() {
        // Radix-2 over 3 digits is the classic binary reflected Gray code.
        let radices = [2usize, 2, 2];
        let expect = [
            [0, 0, 0],
            [0, 0, 1],
            [0, 1, 1],
            [0, 1, 0],
            [1, 1, 0],
            [1, 1, 1],
            [1, 0, 1],
            [1, 0, 0],
        ];
        for (rank, want) in expect.iter().enumerate() {
            assert_eq!(gray_coords(rank, &radices), want.to_vec(), "rank {rank}");
        }
    }

    #[test]
    fn rank_roundtrip_mixed_radices() {
        let radices = [3usize, 2, 4];
        for rank in 0..24 {
            let c = gray_coords(rank, &radices);
            assert_eq!(gray_rank(&c, &radices), rank, "rank {rank}");
        }
    }

    #[test]
    fn consecutive_positions_differ_by_unit_step() {
        let radices = [3usize, 5, 2, 3];
        let total: usize = radices.iter().product();
        let mut prev = gray_coords(0, &radices);
        for rank in 1..total {
            let cur = gray_coords(rank, &radices);
            let dist: usize = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(dist, 1, "jump at rank {rank}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn visits_every_cell_exactly_once() {
        let radices = [4usize, 3, 3];
        let total: usize = radices.iter().product();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..total {
            assert!(seen.insert(gray_coords(rank, &radices)));
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn rank_blocks_is_a_permutation() {
        let g = Grid::new(&[9, 6, 10], &[3, 2, 5]);
        let order = gray_rank_blocks(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.num_blocks()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        let _ = gray_coords(8, &[2, 2, 2]);
    }
}
