//! Update schedules for the 2PCP iterative-refinement phase.
//!
//! The paper (§V–VI) drives Phase 2 by an *update schedule*: a cyclic,
//! tensor-filling sequence of steps. Four schedules are implemented:
//!
//! * **Mode-centric (MC)** — the conventional GridPARAFAC order
//!   (Algorithm 1): every mode in turn, every partition of that mode;
//! * **Fiber-order (FO)** — block-centric, nested-loop traversal of block
//!   positions (Algorithm 2 + §VI-B);
//! * **Z-order (ZO)** — block-centric traversal along the Morton curve
//!   (§VI-C1);
//! * **Hilbert-order (HO)** — block-centric traversal along the
//!   N-dimensional Hilbert curve (§VI-C2, Skilling's transpose algorithm).
//!
//! The crate also provides:
//!
//! * [`UnitId`] — the mode-partition pair `⟨i, kᵢ⟩` of paper Def. 4, the
//!   granularity of all buffer traffic;
//! * [`Step::units`] — the data units a step touches (N units for a block
//!   step, one for a mode-centric step);
//! * virtual-iteration segmentation (paper Def. 3): both schedule families
//!   are compared per `Σᵢ Kᵢ` steps;
//! * [`CycleOracle`] — "how far in the future will this unit be needed
//!   again?", the quantity the forward-looking replacement policy of §VII-B
//!   ranks evictions by.

mod curves;
mod gray;
mod oracle;
mod steps;

pub use curves::{
    hilbert_coords, hilbert_index, hilbert_rank_blocks, morton_index, morton_rank_blocks,
};
pub use gray::{gray_coords, gray_rank, gray_rank_blocks};
pub use oracle::{AccessSequence, CycleOracle, NextUseOracle};
pub use steps::{build_cycle, ScheduleKind, Step, UnitId};

/// Length of one virtual iteration for `grid`: `Σᵢ Kᵢ` **sub-factor
/// updates** (paper Def. 3 — "the length of each virtual iteration is
/// `Σ Kᵢ` updates of the sub-factors of X").
///
/// A mode-centric cycle performs exactly `ΣKᵢ` updates (one per step), so
/// one MC cycle is one virtual iteration. A block-centric step performs
/// `N` updates (one per mode), so a virtual iteration spans `ΣKᵢ / N`
/// block visits and a full block-centric cycle spans `N·ΠKᵢ / ΣKᵢ`
/// virtual iterations. This update-based normalisation is what makes the
/// per-iteration swap counts of the two schedule families comparable
/// (Figure 12).
pub fn virtual_iteration_len(grid: &tpcp_partition::Grid) -> usize {
    grid.num_units()
}
