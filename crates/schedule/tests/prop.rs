//! Property-based tests for curves, schedules and the next-use oracle.

use proptest::prelude::*;
use tpcp_partition::Grid;
use tpcp_schedule::{
    build_cycle, hilbert_index, morton_index, CycleOracle, NextUseOracle, ScheduleKind, Step,
    UnitId,
};

proptest! {
    #[test]
    fn morton_is_bijective(bits in 1u32..5, n in 1usize..4, pick in 0u64..10_000) {
        let cells: u64 = 1u64 << (bits as u64 * n as u64);
        let a = pick % cells;
        let b = (pick / 7) % cells;
        // Decode by scanning is overkill; instead check injectivity through
        // encode of distinct coords.
        let coords_of = |mut v: u64| -> Vec<usize> {
            let side = 1usize << bits;
            let mut c = vec![0usize; n];
            for m in (0..n).rev() {
                c[m] = (v % side as u64) as usize;
                v /= side as u64;
            }
            c
        };
        let ca = coords_of(a);
        let cb = coords_of(b);
        if ca != cb {
            prop_assert_ne!(morton_index(&ca, bits), morton_index(&cb, bits));
        } else {
            prop_assert_eq!(morton_index(&ca, bits), morton_index(&cb, bits));
        }
    }

    #[test]
    fn hilbert_is_injective(bits in 1u32..4, n in 2usize..4, pick in 0u64..10_000) {
        let side = 1usize << bits;
        let cells: u64 = (side as u64).pow(n as u32);
        let coords_of = |mut v: u64| -> Vec<usize> {
            let mut c = vec![0usize; n];
            for m in (0..n).rev() {
                c[m] = (v % side as u64) as usize;
                v /= side as u64;
            }
            c
        };
        let ca = coords_of(pick % cells);
        let cb = coords_of((pick / 3) % cells);
        if ca != cb {
            prop_assert_ne!(hilbert_index(&ca, bits), hilbert_index(&cb, bits));
        }
    }

    #[test]
    fn every_cycle_is_tensor_filling(
        parts in proptest::collection::vec(1usize..5, 2..4),
        kind_idx in 0usize..4,
    ) {
        let dims: Vec<usize> = parts.iter().map(|&p| p * 3).collect();
        let grid = Grid::new(&dims, &parts);
        let kind = ScheduleKind::ALL[kind_idx];
        let cycle = build_cycle(&grid, kind);
        match kind {
            ScheduleKind::ModeCentric => {
                prop_assert_eq!(cycle.len(), grid.num_units());
                // Every unit exactly once.
                let mut seen = vec![false; grid.num_units()];
                for s in &cycle {
                    let units = s.units(&grid);
                    prop_assert_eq!(units.len(), 1);
                    let lin = units[0].linear(&grid);
                    prop_assert!(!seen[lin]);
                    seen[lin] = true;
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
            _ => {
                prop_assert_eq!(cycle.len(), grid.num_blocks());
                let mut seen = vec![false; grid.num_blocks()];
                for s in &cycle {
                    if let Step::Block(l) = s {
                        prop_assert!(!seen[*l]);
                        seen[*l] = true;
                    } else {
                        prop_assert!(false, "mode step in block-centric cycle");
                    }
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn oracle_matches_bruteforce(
        parts in proptest::collection::vec(2usize..4, 2..4),
        kind_idx in 0usize..4,
        now in 0u64..200,
    ) {
        let dims: Vec<usize> = parts.iter().map(|&p| p * 2).collect();
        let grid = Grid::new(&dims, &parts);
        let kind = ScheduleKind::ALL[kind_idx];
        let cycle = build_cycle(&grid, kind);
        let oracle = CycleOracle::new(&grid, &cycle);
        let bound = oracle.bind(&grid);
        let clen = cycle.len() as u64;
        for unit_lin in 0..grid.num_units() {
            let unit = UnitId::from_linear(&grid, unit_lin);
            let got = bound.next_use(unit, now);
            let mut expect = u64::MAX;
            for delta in 0..2 * clen {
                let pos = now + delta;
                if cycle[(pos % clen) as usize].units(&grid).contains(&unit) {
                    expect = pos;
                    break;
                }
            }
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn hilbert_shares_more_than_fiber_on_pow2(grid_pow in 1u32..3) {
        // Desideratum 1: HO should promote at least as much unit sharing
        // between consecutive steps as FO.
        let p = 1usize << grid_pow;
        let grid = Grid::uniform(&[p * 2, p * 2, p * 2], p);
        let shared = |kind: ScheduleKind| -> usize {
            let cycle = build_cycle(&grid, kind);
            let mut total = 0usize;
            for w in cycle.windows(2) {
                let u1 = w[0].units(&grid);
                let u2 = w[1].units(&grid);
                total += u1.iter().filter(|u| u2.contains(u)).count();
            }
            total
        };
        prop_assert!(shared(ScheduleKind::HilbertOrder) >= shared(ScheduleKind::FiberOrder));
    }
}
