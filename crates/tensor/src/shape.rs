//! Row-major shape/stride arithmetic shared by dense and sparse tensors.

/// Total number of elements for `dims` (product of all dimensions).
pub fn num_elements(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Row-major strides (last mode fastest): `strides[i] = Π_{j>i} dims[j]`.
pub fn strides(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * dims[i + 1];
    }
    s
}

/// Linear (row-major) offset of multi-index `idx` within `dims`.
///
/// # Panics
/// Debug-asserts bounds; release builds rely on callers validating.
pub fn linear_index(dims: &[usize], idx: &[usize]) -> usize {
    debug_assert_eq!(dims.len(), idx.len());
    let mut lin = 0usize;
    for (d, i) in dims.iter().zip(idx) {
        debug_assert!(i < d, "index {i} out of bounds for dim {d}");
        lin = lin * d + i;
    }
    lin
}

/// Inverse of [`linear_index`]: recovers the multi-index from `lin`.
pub fn multi_index(dims: &[usize], mut lin: usize) -> Vec<usize> {
    let mut idx = vec![0usize; dims.len()];
    for i in (0..dims.len()).rev() {
        let d = dims[i];
        idx[i] = lin % d;
        lin /= d;
    }
    debug_assert_eq!(lin, 0, "linear index out of range");
    idx
}

/// Iterator over all multi-indices of `dims` in row-major order.
///
/// Allocates one index buffer and yields it by value per step; intended for
/// tests and small shapes (hot paths use [`linear_index`] arithmetic
/// directly).
pub fn iter_indices(dims: &[usize]) -> impl Iterator<Item = Vec<usize>> + '_ {
    let total = num_elements(dims);
    (0..total).map(move |lin| multi_index(dims, lin))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn linear_and_multi_roundtrip() {
        let dims = [3, 4, 5];
        for lin in 0..num_elements(&dims) {
            let idx = multi_index(&dims, lin);
            assert_eq!(linear_index(&dims, &idx), lin);
        }
    }

    #[test]
    fn linear_index_matches_strides() {
        let dims = [2, 3, 4];
        let s = strides(&dims);
        let idx = [1, 2, 3];
        let manual: usize = idx.iter().zip(&s).map(|(i, st)| i * st).sum();
        assert_eq!(linear_index(&dims, &idx), manual);
    }

    #[test]
    fn iter_indices_visits_all_in_order() {
        let dims = [2, 2];
        let all: Vec<Vec<usize>> = iter_indices(&dims).collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn num_elements_edge_cases() {
        assert_eq!(num_elements(&[]), 1);
        assert_eq!(num_elements(&[0, 5]), 0);
        assert_eq!(num_elements(&[2, 3]), 6);
    }
}
