//! Coordinate-format (COO) sparse tensors.

use crate::shape::linear_index;
use crate::{DenseTensor, Result, TensorError};

/// A sparse tensor in coordinate format, struct-of-arrays layout.
///
/// Each non-zero `e` is described by `coords[m][e]` for every mode `m` plus
/// `values[e]`. Coordinates are stored as `u32` (the paper's largest mode is
/// 100K wide; `u32` halves the index footprint vs `usize` per the type-size
/// guidance). Entries are kept sorted by row-major linear index and
/// deduplicated (last write wins) by [`SparseBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub struct SparseTensor {
    dims: Vec<usize>,
    coords: Vec<Vec<u32>>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Creates an empty sparse tensor with the given dimensions.
    pub fn empty(dims: &[usize]) -> Self {
        SparseTensor {
            dims: dims.to_vec(),
            coords: vec![Vec::new(); dims.len()],
            values: Vec::new(),
        }
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes (tensor order).
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `true` when no non-zeros are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of cells that are non-zero.
    pub fn density(&self) -> f64 {
        let total = crate::shape::num_elements(&self.dims);
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Mode-`m` coordinates of every non-zero.
    #[inline]
    pub fn mode_coords(&self, m: usize) -> &[u32] {
        &self.coords[m]
    }

    /// Values of every non-zero.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The multi-index of non-zero `e` (allocates; test/debug convenience).
    pub fn coord_of(&self, e: usize) -> Vec<usize> {
        self.coords.iter().map(|c| c[e] as usize).collect()
    }

    /// Iterates `(multi_index_per_mode, value)` without allocating per entry:
    /// the callback receives a closure-visible slice of mode coordinates.
    pub fn for_each_entry(&self, mut f: impl FnMut(&[u32], f64)) {
        let order = self.order();
        let mut idx = vec![0u32; order];
        for e in 0..self.nnz() {
            for (m, slot) in idx.iter_mut().enumerate() {
                *slot = self.coords[m][e];
            }
            f(&idx, self.values[e]);
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.fro_norm_sq().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn fro_norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Materialises the tensor densely.
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] if the dense form would overflow
    /// `usize` cells (guard for misuse on paper-scale shapes).
    pub fn to_dense(&self) -> Result<DenseTensor> {
        let mut total: usize = 1;
        for &d in &self.dims {
            total = total
                .checked_mul(d)
                .ok_or_else(|| TensorError::ShapeMismatch {
                    op: "to_dense",
                    expected: vec![usize::MAX],
                    actual: self.dims.clone(),
                })?;
        }
        let _ = total;
        let mut out = DenseTensor::zeros(&self.dims);
        let mut idx = vec![0usize; self.order()];
        for e in 0..self.nnz() {
            for (m, slot) in idx.iter_mut().enumerate() {
                *slot = self.coords[m][e] as usize;
            }
            let lin = linear_index(&self.dims, &idx);
            out.as_mut_slice()[lin] = self.values[e];
        }
        Ok(out)
    }

    /// Extracts all non-zeros falling within dense `ranges` and re-bases
    /// their coordinates to the block origin.
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] on a malformed range list.
    pub fn slice(&self, ranges: &[std::ops::Range<usize>]) -> Result<SparseTensor> {
        if ranges.len() != self.order()
            || ranges
                .iter()
                .zip(&self.dims)
                .any(|(r, &d)| r.start > r.end || r.end > d)
        {
            return Err(TensorError::ShapeMismatch {
                op: "sparse slice",
                expected: self.dims.clone(),
                actual: ranges.iter().map(|r| r.end).collect(),
            });
        }
        let block_dims: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
        let mut out = SparseTensor::empty(&block_dims);
        'entry: for e in 0..self.nnz() {
            for (m, r) in ranges.iter().enumerate() {
                let c = self.coords[m][e] as usize;
                if c < r.start || c >= r.end {
                    continue 'entry;
                }
            }
            for (m, r) in ranges.iter().enumerate() {
                out.coords[m].push(self.coords[m][e] - r.start as u32);
            }
            out.values.push(self.values[e]);
        }
        Ok(out)
    }

    /// Builds a sparse view of a dense tensor, keeping cells with
    /// `|value| > threshold`.
    pub fn from_dense(t: &DenseTensor, threshold: f64) -> SparseTensor {
        let mut b = SparseBuilder::new(t.dims());
        let dims = t.dims().to_vec();
        let mut idx = vec![0usize; dims.len()];
        for (lin, &v) in t.as_slice().iter().enumerate() {
            if v.abs() > threshold {
                let mut rem = lin;
                for m in (0..dims.len()).rev() {
                    idx[m] = rem % dims[m];
                    rem /= dims[m];
                }
                b.push(&idx, v);
            }
        }
        b.build()
    }
}

/// Accumulates entries for a [`SparseTensor`], then sorts and deduplicates.
#[derive(Clone, Debug)]
pub struct SparseBuilder {
    dims: Vec<usize>,
    entries: Vec<(u64, f64)>,
    coords_tmp: Vec<Vec<u32>>,
}

impl SparseBuilder {
    /// Starts a builder for the given dimensions.
    ///
    /// # Panics
    /// Panics if any dimension exceeds `u32::MAX` or the row-major linear
    /// index space exceeds `u64` (neither occurs at paper scale).
    pub fn new(dims: &[usize]) -> Self {
        let mut space: u64 = 1;
        for &d in dims {
            assert!(d <= u32::MAX as usize, "dimension too large for u32 coords");
            space = space
                .checked_mul(d as u64)
                .expect("index space exceeds u64");
        }
        SparseBuilder {
            dims: dims.to_vec(),
            entries: Vec::new(),
            coords_tmp: vec![Vec::new(); dims.len()],
        }
    }

    /// Appends one entry (later duplicates of a coordinate win).
    ///
    /// # Panics
    /// Debug-asserts the index is in bounds.
    pub fn push(&mut self, idx: &[usize], value: f64) {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut lin: u64 = 0;
        for (&d, &i) in self.dims.iter().zip(idx) {
            debug_assert!(i < d, "builder index out of bounds");
            lin = lin * d as u64 + i as u64;
        }
        self.entries.push((lin, value));
    }

    /// Number of pushed (pre-dedup) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalises into a sorted, deduplicated [`SparseTensor`].
    #[allow(clippy::needless_range_loop)]
    pub fn build(mut self) -> SparseTensor {
        self.entries.sort_unstable_by_key(|&(lin, _)| lin);
        // Last write wins for duplicates.
        self.entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        let order = self.dims.len();
        let nnz = self.entries.len();
        for c in &mut self.coords_tmp {
            c.clear();
            c.reserve(nnz);
        }
        let mut values = Vec::with_capacity(nnz);
        for &(lin, v) in &self.entries {
            let mut rem = lin;
            // Decompose the linear index back into per-mode coordinates.
            let mut idx_rev = [0u32; 16];
            debug_assert!(order <= 16, "order > 16 unsupported by builder scratch");
            for m in (0..order).rev() {
                let d = self.dims[m] as u64;
                idx_rev[m] = (rem % d) as u32;
                rem /= d;
            }
            for m in 0..order {
                self.coords_tmp[m].push(idx_rev[m]);
            }
            values.push(v);
        }
        SparseTensor {
            dims: self.dims,
            coords: self.coords_tmp,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_and_dedups() {
        let mut b = SparseBuilder::new(&[3, 3]);
        b.push(&[2, 2], 1.0);
        b.push(&[0, 1], 2.0);
        b.push(&[2, 2], 5.0); // overwrites
        let t = b.build();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.coord_of(0), vec![0, 1]);
        assert_eq!(t.values()[0], 2.0);
        assert_eq!(t.coord_of(1), vec![2, 2]);
        assert_eq!(t.values()[1], 5.0);
    }

    #[test]
    fn density_and_norms() {
        let mut b = SparseBuilder::new(&[2, 2]);
        b.push(&[0, 0], 3.0);
        b.push(&[1, 1], 4.0);
        let t = b.build();
        assert!((t.density() - 0.5).abs() < 1e-12);
        assert!((t.fro_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn to_dense_roundtrip() {
        let mut b = SparseBuilder::new(&[2, 3, 2]);
        b.push(&[0, 2, 1], 7.0);
        b.push(&[1, 0, 0], -2.0);
        let s = b.build();
        let d = s.to_dense().unwrap();
        assert_eq!(d.get(&[0, 2, 1]).unwrap(), 7.0);
        assert_eq!(d.get(&[1, 0, 0]).unwrap(), -2.0);
        assert_eq!(d.nnz(), 2);
        let s2 = SparseTensor::from_dense(&d, 0.0);
        assert_eq!(s, s2);
    }

    #[test]
    fn slice_rebases_coordinates() {
        let mut b = SparseBuilder::new(&[4, 4]);
        b.push(&[1, 2], 1.0);
        b.push(&[3, 3], 2.0);
        b.push(&[0, 0], 3.0);
        let t = b.build();
        let blk = t.slice(&[1..4, 2..4]).unwrap();
        assert_eq!(blk.dims(), &[3, 2]);
        assert_eq!(blk.nnz(), 2);
        assert_eq!(blk.coord_of(0), vec![0, 0]); // was (1,2)
        assert_eq!(blk.coord_of(1), vec![2, 1]); // was (3,3)
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // arity mismatch is the point
    fn slice_bad_ranges() {
        let t = SparseTensor::empty(&[2, 2]);
        assert!(t.slice(&[0..3, 0..2]).is_err());
        assert!(t.slice(&[0..2]).is_err());
    }

    #[test]
    fn for_each_entry_order() {
        let mut b = SparseBuilder::new(&[2, 2]);
        b.push(&[1, 0], 1.0);
        b.push(&[0, 1], 2.0);
        let t = b.build();
        let mut seen = Vec::new();
        t.for_each_entry(|idx, v| seen.push((idx.to_vec(), v)));
        assert_eq!(seen, vec![(vec![0, 1], 2.0), (vec![1, 0], 1.0)]);
    }

    #[test]
    fn empty_tensor_behaviour() {
        let t = SparseTensor::empty(&[5, 5, 5]);
        assert!(t.is_empty());
        assert_eq!(t.density(), 0.0);
        assert_eq!(t.fro_norm(), 0.0);
        assert_eq!(t.to_dense().unwrap().nnz(), 0);
    }
}
