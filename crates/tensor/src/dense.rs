//! Contiguous row-major dense tensors and mode-n unfolding.

use crate::shape::{linear_index, multi_index, num_elements, strides};
use crate::{Result, TensorError};
use tpcp_linalg::Mat;

/// An N-mode dense tensor stored contiguously in row-major order
/// (last mode varies fastest).
///
/// This is the representation of the "dense tensors common in science and
/// engineering" the paper is designed for (§I footnote 2): stored fully,
/// with explicit zeros, 8 bytes per cell.
#[derive(Clone, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates a zero tensor with the given dimensions.
    pub fn zeros(dims: &[usize]) -> Self {
        DenseTensor {
            dims: dims.to_vec(),
            data: vec![0.0; num_elements(dims)],
        }
    }

    /// Wraps a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len()` disagrees with the dimensions.
    pub fn from_vec(dims: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            num_elements(dims),
            "from_vec: data length mismatch for dims {dims:?}"
        );
        DenseTensor {
            dims: dims.to_vec(),
            data,
        }
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes (tensor order).
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Total number of stored cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor stores no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the row-major cell data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the row-major cell data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reads the cell at `idx`.
    ///
    /// # Errors
    /// [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn get(&self, idx: &[usize]) -> Result<f64> {
        self.check_index(idx)?;
        Ok(self.data[linear_index(&self.dims, idx)])
    }

    /// Writes the cell at `idx`.
    ///
    /// # Errors
    /// [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn set(&mut self, idx: &[usize], v: f64) -> Result<()> {
        self.check_index(idx)?;
        let lin = linear_index(&self.dims, idx);
        self.data[lin] = v;
        Ok(())
    }

    /// Unchecked read by precomputed linear offset (hot paths).
    #[inline]
    pub fn get_linear(&self, lin: usize) -> f64 {
        self.data[lin]
    }

    fn check_index(&self, idx: &[usize]) -> Result<()> {
        if idx.len() != self.dims.len() || idx.iter().zip(&self.dims).any(|(i, d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: idx.to_vec(),
                dims: self.dims.clone(),
            });
        }
        Ok(())
    }

    /// Number of non-zero cells (exact scan).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Frobenius norm `‖X‖`.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm `‖X‖²` (avoids the sqrt in accumulation laps).
    pub fn fro_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>()
    }

    /// Mode-`n` unfolding (matricisation) as an `Iₙ × Π_{j≠n} Iⱼ` matrix.
    ///
    /// Column ordering is row-major over the remaining modes *in ascending
    /// mode order* (last remaining mode fastest), which matches the row
    /// ordering of [`tpcp_linalg::khatri_rao`] applied to the factor list
    /// with mode `n` removed. Consequently for an exact CP tensor,
    /// `X_(n) = A⁽ⁿ⁾ · KR([.. factors j≠n ..])ᵀ`.
    ///
    /// # Errors
    /// [`TensorError::InvalidMode`] when `n` is not a valid mode.
    pub fn unfold(&self, n: usize) -> Result<Mat> {
        let order = self.order();
        if n >= order {
            return Err(TensorError::InvalidMode { mode: n, order });
        }
        let rows = self.dims[n];
        let cols = self.len() / rows.max(1);
        let mut out = Mat::zeros(rows, cols);
        if self.data.is_empty() {
            return Ok(out);
        }
        let st = strides(&self.dims);
        let stride_n = st[n];
        let dim_n = self.dims[n];
        // The source decomposes as outer × dim_n × inner where
        // inner = stride_n and outer iterates over the modes before n.
        let inner = stride_n;
        let outer = self.len() / (dim_n * inner);
        for o in 0..outer {
            let src_base_o = o * dim_n * inner;
            let dst_col_o = o * inner;
            for r in 0..dim_n {
                let src = &self.data[src_base_o + r * inner..src_base_o + (r + 1) * inner];
                let dst_row = out.row_mut(r);
                dst_row[dst_col_o..dst_col_o + inner].copy_from_slice(src);
            }
        }
        Ok(out)
    }

    /// Inverse of [`unfold`]: folds a matricisation back into a tensor of
    /// shape `dims`.
    ///
    /// # Errors
    /// [`TensorError::InvalidMode`] for a bad mode;
    /// [`TensorError::ShapeMismatch`] when the matrix shape disagrees with
    /// `dims`.
    pub fn fold(mat: &Mat, n: usize, dims: &[usize]) -> Result<DenseTensor> {
        let order = dims.len();
        if n >= order {
            return Err(TensorError::InvalidMode { mode: n, order });
        }
        let rows = dims[n];
        let cols = num_elements(dims) / rows.max(1);
        if mat.shape() != (rows, cols) {
            return Err(TensorError::ShapeMismatch {
                op: "fold",
                expected: vec![rows, cols],
                actual: vec![mat.rows(), mat.cols()],
            });
        }
        let mut out = DenseTensor::zeros(dims);
        if out.data.is_empty() {
            return Ok(out);
        }
        let st = strides(dims);
        let inner = st[n];
        let dim_n = dims[n];
        let outer = out.len() / (dim_n * inner);
        for o in 0..outer {
            let dst_base_o = o * dim_n * inner;
            let src_col_o = o * inner;
            for r in 0..dim_n {
                let src = &mat.row(r)[src_col_o..src_col_o + inner];
                out.data[dst_base_o + r * inner..dst_base_o + (r + 1) * inner].copy_from_slice(src);
            }
        }
        Ok(out)
    }

    /// Extracts the sub-tensor covering `ranges` (one half-open range per
    /// mode), copying into a new dense tensor.
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] when the range list is malformed or
    /// out of bounds.
    pub fn slice(&self, ranges: &[std::ops::Range<usize>]) -> Result<DenseTensor> {
        if ranges.len() != self.order()
            || ranges
                .iter()
                .zip(&self.dims)
                .any(|(r, &d)| r.start > r.end || r.end > d)
        {
            return Err(TensorError::ShapeMismatch {
                op: "slice",
                expected: self.dims.clone(),
                actual: ranges.iter().map(|r| r.end).collect(),
            });
        }
        let out_dims: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
        let mut out = DenseTensor::zeros(&out_dims);
        if out.data.is_empty() {
            return Ok(out);
        }
        let src_strides = strides(&self.dims);
        // Copy contiguous runs along the last mode.
        let last = self.order() - 1;
        let run = out_dims[last];
        let outer_dims = &out_dims[..last];
        let outer_count: usize = outer_dims.iter().product();
        let mut dst_off = 0usize;
        for o in 0..outer_count {
            let outer_idx = multi_index(outer_dims, o);
            let mut src_off = ranges[last].start;
            for (m, &oi) in outer_idx.iter().enumerate() {
                src_off += (ranges[m].start + oi) * src_strides[m];
            }
            out.data[dst_off..dst_off + run].copy_from_slice(&self.data[src_off..src_off + run]);
            dst_off += run;
        }
        Ok(out)
    }

    /// Writes `block` into this tensor at the position described by
    /// `offsets` (the inverse of [`slice`]).
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] when the block does not fit.
    pub fn paste(&mut self, block: &DenseTensor, offsets: &[usize]) -> Result<()> {
        if offsets.len() != self.order()
            || block.order() != self.order()
            || offsets
                .iter()
                .zip(block.dims())
                .zip(&self.dims)
                .any(|((&o, &b), &d)| o + b > d)
        {
            return Err(TensorError::ShapeMismatch {
                op: "paste",
                expected: self.dims.clone(),
                actual: block.dims.clone(),
            });
        }
        if block.is_empty() {
            return Ok(());
        }
        let dst_strides = strides(&self.dims);
        let last = self.order() - 1;
        let run = block.dims[last];
        let outer_dims = &block.dims[..last];
        let outer_count: usize = outer_dims.iter().product();
        let mut src_off = 0usize;
        for o in 0..outer_count {
            let outer_idx = multi_index(outer_dims, o);
            let mut dst_off = offsets[last];
            for (m, &oi) in outer_idx.iter().enumerate() {
                dst_off += (offsets[m] + oi) * dst_strides[m];
            }
            self.data[dst_off..dst_off + run].copy_from_slice(&block.data[src_off..src_off + run]);
            src_off += run;
        }
        Ok(())
    }
}

impl std::fmt::Debug for DenseTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DenseTensor(dims={:?}, nnz={}/{})",
            self.dims,
            self.nnz(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_linalg::khatri_rao;

    fn seq_tensor(dims: &[usize]) -> DenseTensor {
        let n = num_elements(dims);
        DenseTensor::from_vec(dims, (0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn zeros_get_set() {
        let mut t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        t.set(&[1, 2, 3], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 5.0);
        assert_eq!(t.nnz(), 1);
        assert!(t.get(&[2, 0, 0]).is_err());
        assert!(t.set(&[0, 3, 0], 1.0).is_err());
        assert!(t.get(&[0, 0]).is_err());
    }

    #[test]
    fn unfold_mode0_is_reshape() {
        let t = seq_tensor(&[2, 3, 2]);
        let m = t.unfold(0).unwrap();
        assert_eq!(m.shape(), (2, 6));
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.row(1), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn unfold_middle_mode() {
        let t = seq_tensor(&[2, 3, 2]);
        let m = t.unfold(1).unwrap();
        assert_eq!(m.shape(), (3, 4));
        // Column order: remaining modes (0, 2) row-major, mode 2 fastest.
        // Entry (j; i, k) = X[i, j, k] = ((i*3)+j)*2 + k.
        for j in 0..3 {
            for i in 0..2 {
                for k in 0..2 {
                    let col = i * 2 + k;
                    assert_eq!(m.get(j, col), ((i * 3 + j) * 2 + k) as f64);
                }
            }
        }
    }

    #[test]
    fn unfold_last_mode() {
        let t = seq_tensor(&[2, 3, 2]);
        let m = t.unfold(2).unwrap();
        assert_eq!(m.shape(), (2, 6));
        for k in 0..2 {
            for i in 0..2 {
                for j in 0..3 {
                    let col = i * 3 + j;
                    assert_eq!(m.get(k, col), ((i * 3 + j) * 2 + k) as f64);
                }
            }
        }
    }

    #[test]
    fn unfold_fold_roundtrip_all_modes() {
        let t = seq_tensor(&[3, 4, 2, 2]);
        for n in 0..4 {
            let m = t.unfold(n).unwrap();
            let back = DenseTensor::fold(&m, n, t.dims()).unwrap();
            assert_eq!(back, t, "mode {n}");
        }
    }

    #[test]
    fn unfold_bad_mode() {
        let t = seq_tensor(&[2, 2]);
        assert!(matches!(
            t.unfold(2),
            Err(TensorError::InvalidMode { mode: 2, order: 2 })
        ));
    }

    #[test]
    fn fold_shape_mismatch() {
        let m = Mat::zeros(2, 5);
        assert!(DenseTensor::fold(&m, 0, &[2, 3]).is_err());
    }

    #[test]
    fn unfold_matches_khatri_rao_for_cp_tensor() {
        // Build a rank-2 CP tensor explicitly and verify the unfolding
        // identity X_(n) = A_n · KR(others)ᵀ for every mode.
        let a = Mat::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 1.0]]);
        let b = Mat::from_rows(&[&[1.0, 1.0], &[0.5, 2.0]]);
        let c = Mat::from_rows(&[&[2.0, 0.0], &[1.0, 1.0], &[0.0, 3.0], &[1.0, -1.0]]);
        let dims = [3, 2, 4];
        let mut t = DenseTensor::zeros(&dims);
        for i in 0..3 {
            for j in 0..2 {
                for k in 0..4 {
                    let mut v = 0.0;
                    for f in 0..2 {
                        v += a.get(i, f) * b.get(j, f) * c.get(k, f);
                    }
                    t.set(&[i, j, k], v).unwrap();
                }
            }
        }
        let factors = [&a, &b, &c];
        for n in 0..3 {
            let others: Vec<&Mat> = (0..3).filter(|&m| m != n).map(|m| factors[m]).collect();
            let kr = khatri_rao(&others).unwrap();
            let expect = factors[n].matmul_t(&kr).unwrap();
            let got = t.unfold(n).unwrap();
            assert!(
                got.max_abs_diff(&expect).unwrap() < 1e-12,
                "mode {n} mismatch"
            );
        }
    }

    #[test]
    fn slice_and_paste_roundtrip() {
        let t = seq_tensor(&[4, 4, 4]);
        let block = t.slice(&[1..3, 0..2, 2..4]).unwrap();
        assert_eq!(block.dims(), &[2, 2, 2]);
        assert_eq!(block.get(&[0, 0, 0]).unwrap(), t.get(&[1, 0, 2]).unwrap());
        assert_eq!(block.get(&[1, 1, 1]).unwrap(), t.get(&[2, 1, 3]).unwrap());
        let mut rebuilt = DenseTensor::zeros(&[4, 4, 4]);
        rebuilt.paste(&block, &[1, 0, 2]).unwrap();
        assert_eq!(rebuilt.get(&[2, 1, 3]).unwrap(), t.get(&[2, 1, 3]).unwrap());
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // arity mismatch is the point
    fn slice_errors() {
        let t = seq_tensor(&[2, 2]);
        assert!(t.slice(&[0..3, 0..2]).is_err());
        assert!(t.slice(&[0..2]).is_err());
    }

    #[test]
    fn paste_errors() {
        let mut t = DenseTensor::zeros(&[2, 2]);
        let big = DenseTensor::zeros(&[3, 1]);
        assert!(t.paste(&big, &[0, 0]).is_err());
        let ok = DenseTensor::zeros(&[1, 1]);
        assert!(t.paste(&ok, &[2, 0]).is_err());
    }

    #[test]
    fn norms() {
        let t = DenseTensor::from_vec(&[2, 2], vec![3.0, 0.0, 0.0, 4.0]);
        assert!((t.fro_norm() - 5.0).abs() < 1e-12);
        assert!((t.fro_norm_sq() - 25.0).abs() < 1e-12);
    }
}
