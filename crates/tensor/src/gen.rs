//! Seeded random generation primitives.
//!
//! Dataset-shaped generators (Epinions-like, Face-like, billion-scale dense)
//! live in `tpcp-datasets`; this module provides the reusable building
//! blocks they are assembled from.

use crate::shape::num_elements;
use crate::DenseTensor;
use rand::{Rng, RngExt};
use tpcp_linalg::Mat;

/// A `rows × cols` factor matrix with i.i.d. entries in `[0, 1)`.
///
/// Non-negative initialisation is the common choice for CP-ALS on
/// count/measurement data and keeps early Gram matrices well conditioned.
pub fn random_factor<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.random::<f64>();
    }
    m
}

/// A fully random dense tensor with i.i.d. entries in `[0, 1)`.
pub fn random_dense<R: Rng>(dims: &[usize], rng: &mut R) -> DenseTensor {
    let mut t = DenseTensor::zeros(dims);
    for v in t.as_mut_slice() {
        *v = rng.random::<f64>();
    }
    t
}

/// A dense-stored tensor in which an expected `density` fraction of cells is
/// non-zero (uniform values in `(0, 1]`), the rest exactly zero.
///
/// This is the shape of the paper's Table I/II inputs: "billion-scale dense
/// tensors" of density 0.2 / 0.49 — stored densely, materialised zeros and
/// all, which is what distinguishes 2PCP's target workloads from the sparse
/// social-media tensors HaTen2 is built for.
///
/// Each cell is drawn independently (Bernoulli(density)), so the exact
/// non-zero count concentrates tightly around `density · Π dims` for the
/// sizes used in the harness.
pub fn sparse_support_dense<R: Rng>(dims: &[usize], density: f64, rng: &mut R) -> DenseTensor {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let total = num_elements(dims);
    let mut t = DenseTensor::zeros(dims);
    if total == 0 {
        return t;
    }
    let data = t.as_mut_slice();
    for v in data.iter_mut() {
        if rng.random::<f64>() < density {
            // Avoid exact zeros so nnz accounting is stable.
            *v = rng.random::<f64>().max(f64::MIN_POSITIVE);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_factor_is_deterministic_per_seed() {
        let a = random_factor(4, 3, &mut StdRng::seed_from_u64(7));
        let b = random_factor(4, 3, &mut StdRng::seed_from_u64(7));
        let c = random_factor(4, 3, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn random_dense_fills_all_cells() {
        let t = random_dense(&[3, 3, 3], &mut StdRng::seed_from_u64(1));
        assert_eq!(t.nnz(), 27, "probability of an exact zero is negligible");
    }

    #[test]
    fn sparse_support_density_is_respected() {
        let t = sparse_support_dense(&[20, 20, 20], 0.2, &mut StdRng::seed_from_u64(42));
        let density = t.nnz() as f64 / t.len() as f64;
        assert!(
            (density - 0.2).abs() < 0.03,
            "observed density {density} too far from 0.2"
        );
    }

    #[test]
    fn sparse_support_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let zero = sparse_support_dense(&[5, 5], 0.0, &mut rng);
        assert_eq!(zero.nnz(), 0);
        let full = sparse_support_dense(&[5, 5], 1.0, &mut rng);
        assert_eq!(full.nnz(), 25);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn sparse_support_rejects_bad_density() {
        let _ = sparse_support_dense(&[2, 2], 1.5, &mut StdRng::seed_from_u64(0));
    }
}
