//! Dense and sparse tensor types for the 2PCP reproduction.
//!
//! Tensors are N-mode arrays (paper §III-A). This crate provides:
//!
//! * [`DenseTensor`] — contiguous row-major storage (last mode fastest),
//!   the representation for the "relatively dense tensors common in
//!   scientific and engineering applications" the paper targets;
//! * [`SparseTensor`] — coordinate (COO) storage in struct-of-arrays form,
//!   used for the Epinions/Ciao/Enron-like evaluation datasets and by the
//!   HaTen2-style baseline;
//! * mode-`n` unfolding (matricisation) compatible with
//!   [`tpcp_linalg::khatri_rao`]'s row ordering, so that
//!   `X_(n) ≈ A⁽ⁿ⁾ · KR(factors ≠ n)ᵀ` holds exactly;
//! * seeded random generation primitives used by the dataset generators.

mod dense;
mod gen;
mod shape;
mod sparse;

pub use dense::DenseTensor;
pub use gen::{random_dense, random_factor, sparse_support_dense};
pub use shape::{iter_indices, linear_index, multi_index, num_elements, strides};
pub use sparse::{SparseBuilder, SparseTensor};

/// Errors surfaced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// An index fell outside the tensor's dimensions.
    IndexOutOfBounds {
        /// The offending multi-index.
        index: Vec<usize>,
        /// The tensor dimensions.
        dims: Vec<usize>,
    },
    /// Two tensors (or a tensor and a factor set) disagree on shape.
    ShapeMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Expected shape.
        expected: Vec<usize>,
        /// Actual shape.
        actual: Vec<usize>,
    },
    /// A mode argument exceeded the tensor order.
    InvalidMode {
        /// The requested mode.
        mode: usize,
        /// The tensor order (number of modes).
        order: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dims {dims:?}")
            }
            TensorError::ShapeMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch in {op}: expected {expected:?}, got {actual:?}"
                )
            }
            TensorError::InvalidMode { mode, order } => {
                write!(f, "mode {mode} invalid for order-{order} tensor")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
