//! Property-based tests for tensor shape math, unfolding and COO storage.

use proptest::prelude::*;
use tpcp_tensor::{
    linear_index, multi_index, num_elements, DenseTensor, SparseBuilder, SparseTensor,
};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..5, 1..4)
}

proptest! {
    #[test]
    fn linear_multi_index_roundtrip(dims in small_dims(), frac in 0.0f64..1.0) {
        let total = num_elements(&dims);
        let lin = ((total as f64 - 1.0) * frac) as usize;
        let idx = multi_index(&dims, lin);
        prop_assert_eq!(linear_index(&dims, &idx), lin);
        for (i, d) in idx.iter().zip(&dims) {
            prop_assert!(i < d);
        }
    }

    #[test]
    fn unfold_fold_roundtrip(dims in small_dims(), seed in 0u64..1000) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..num_elements(&dims)).map(|_| rng.random::<f64>()).collect();
        let t = DenseTensor::from_vec(&dims, data);
        for n in 0..dims.len() {
            let m = t.unfold(n).unwrap();
            prop_assert_eq!(m.rows(), dims[n]);
            let back = DenseTensor::fold(&m, n, &dims).unwrap();
            prop_assert_eq!(&back, &t);
        }
    }

    #[test]
    fn unfold_preserves_frobenius_norm(dims in small_dims(), seed in 0u64..1000) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..num_elements(&dims)).map(|_| rng.random::<f64>()).collect();
        let t = DenseTensor::from_vec(&dims, data);
        for n in 0..dims.len() {
            let m = t.unfold(n).unwrap();
            prop_assert!((m.fro_norm() - t.fro_norm()).abs() < 1e-10);
        }
    }

    #[test]
    fn sparse_dense_roundtrip(
        dims in small_dims(),
        entries in proptest::collection::vec((0.0f64..1.0, 0.1f64..10.0), 0..20),
    ) {
        let mut b = SparseBuilder::new(&dims);
        let total = num_elements(&dims);
        for (pos, v) in &entries {
            let lin = ((total as f64 - 1.0).max(0.0) * pos) as usize;
            let idx = multi_index(&dims, lin.min(total - 1));
            b.push(&idx, *v);
        }
        let s = b.build();
        let d = s.to_dense().unwrap();
        prop_assert_eq!(d.nnz(), s.nnz());
        let s2 = SparseTensor::from_dense(&d, 0.0);
        prop_assert_eq!(s, s2);
    }

    #[test]
    fn sparse_slice_preserves_values(
        seed in 0u64..500,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dims = [6usize, 6, 6];
        let mut b = SparseBuilder::new(&dims);
        for _ in 0..30 {
            let idx = [
                rng.random_range(0..6usize),
                rng.random_range(0..6usize),
                rng.random_range(0..6usize),
            ];
            b.push(&idx, rng.random::<f64>() + 0.1);
        }
        let t = b.build();
        // Slice into 2x2x2 half-open octants and check total nnz conserved.
        let mut total = 0usize;
        let mut norm_sq = 0.0;
        for i in [0..3usize, 3..6] {
            for j in [0..3usize, 3..6] {
                for k in [0..3usize, 3..6] {
                    let blk = t.slice(&[i.clone(), j.clone(), k.clone()]).unwrap();
                    total += blk.nnz();
                    norm_sq += blk.fro_norm_sq();
                }
            }
        }
        prop_assert_eq!(total, t.nnz());
        prop_assert!((norm_sq - t.fro_norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn dense_slice_paste_partition_roundtrip(seed in 0u64..500) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dims = [4usize, 5, 3];
        let data: Vec<f64> = (0..num_elements(&dims)).map(|_| rng.random::<f64>()).collect();
        let t = DenseTensor::from_vec(&dims, data);
        let mut rebuilt = DenseTensor::zeros(&dims);
        // Partition mode 0 into [0,2) and [2,4), mode 1 into [0,3) and [3,5).
        for r0 in [0..2usize, 2..4] {
            for r1 in [0..3usize, 3..5] {
                let blk = t.slice(&[r0.clone(), r1.clone(), 0..3]).unwrap();
                rebuilt.paste(&blk, &[r0.start, r1.start, 0]).unwrap();
            }
        }
        prop_assert_eq!(rebuilt, t);
    }
}
